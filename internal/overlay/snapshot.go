package overlay

import (
	"fmt"
	"slices"

	"ace/internal/physical"
)

// NetState is the full history-dependent state of a Network in exported
// form, for the snapshot codec (internal/snap). Everything a restored
// Network cannot re-derive from (seed, config) is here: attachments,
// liveness, adjacency, host caches, and the mutation journal with its
// version. Derived tallies (edge count, live count, crash-debris holder
// lists) are reconstructed — and cross-checked — by RestoreNetwork, so a
// corrupted snapshot fails restore instead of corrupting the engine.
//
// The slices returned by SnapshotState ALIAS the network's internals:
// the state is valid until the next mutation, which is exactly the
// checkpoint discipline (serialize between rounds, then keep running).
type NetState struct {
	// Attach is the physical attachment point of each peer slot.
	Attach []int
	// Alive flags each slot's liveness.
	Alive []bool
	// Nbr is each slot's adjacency, sorted ascending. Entries whose
	// other endpoint is dead are the half-open references a crash left
	// behind; RestoreNetwork rebuilds the holder index from them.
	Nbr [][]PeerID
	// HostCache is each slot's remembered addresses, in cache order
	// (order matters: Join dials the front first).
	HostCache [][]PeerID
	// Version is the journal's monotonic mutation counter.
	Version uint64
	// JournalBase is the version of the oldest retained journal entry;
	// Version − JournalBase entries follow in Journal.
	JournalBase uint64
	// Journal is the retained journal tail.
	Journal []Event
}

// SnapshotState captures the network's full history-dependent state.
// The result aliases the network's own slices and is invalidated by the
// next mutation; encode it (or deep-copy it) before mutating again.
func (n *Network) SnapshotState() *NetState {
	return &NetState{
		Attach:      n.attach,
		Alive:       n.alive,
		Nbr:         n.nbr,
		HostCache:   n.hostCache,
		Version:     n.version,
		JournalBase: n.journalBase,
		Journal:     n.journal,
	}
}

// RestoreNetwork rebuilds a Network from a snapshot against the given
// oracle (regenerated from the run's seed). Every structural invariant
// the live mutation paths maintain is validated — attachment ranges,
// strictly-sorted adjacency, edge symmetry, no dead—dead edges, journal
// bounds — and the derived tallies (edges, nAlive, dangling holders) are
// reconstructed from scratch, so a torn or tampered snapshot that passed
// its checksums still cannot install an inconsistent overlay.
func RestoreNetwork(oracle *physical.Oracle, st *NetState) (*Network, error) {
	nPeers := len(st.Attach)
	if nPeers == 0 {
		return nil, fmt.Errorf("overlay: restore: empty attachment table")
	}
	for i, a := range st.Attach {
		if a < 0 || a >= oracle.N() {
			return nil, fmt.Errorf("overlay: restore: attachment %d of peer %d out of range [0,%d)", a, i, oracle.N())
		}
	}
	if len(st.Alive) != nPeers || len(st.Nbr) != nPeers || len(st.HostCache) != nPeers {
		return nil, fmt.Errorf("overlay: restore: section sizes disagree (attach %d, alive %d, nbr %d, hostcache %d)",
			nPeers, len(st.Alive), len(st.Nbr), len(st.HostCache))
	}

	n := &Network{
		oracle:      oracle,
		attach:      append([]int(nil), st.Attach...),
		alive:       append([]bool(nil), st.Alive...),
		nbr:         make([][]PeerID, nPeers),
		hostCache:   make([][]PeerID, nPeers),
		version:     st.Version,
		journalBase: st.JournalBase,
	}
	for _, a := range st.Alive {
		if a {
			n.nAlive++
		}
	}

	// Adjacency: strictly ascending, in range, no self loops, symmetric.
	// Classify each undirected pair once (from its lower endpoint): both
	// ends alive is a live edge; exactly one end alive is a half-open
	// crash reference held by the live end; both dead is invalid (a dead
	// peer's own adjacency must be empty).
	for p := range st.Nbr {
		row := st.Nbr[p]
		if !st.Alive[p] && len(row) != 0 {
			return nil, fmt.Errorf("overlay: restore: dead peer %d has %d adjacency entries", p, len(row))
		}
		prev := PeerID(-1)
		for _, q := range row {
			if q < 0 || int(q) >= nPeers {
				return nil, fmt.Errorf("overlay: restore: peer %d adjacent to out-of-range %d", p, q)
			}
			if q == PeerID(p) {
				return nil, fmt.Errorf("overlay: restore: peer %d adjacent to itself", p)
			}
			if q <= prev {
				return nil, fmt.Errorf("overlay: restore: peer %d adjacency not strictly ascending at %d", p, q)
			}
			prev = q
		}
		n.nbr[p] = append([]PeerID(nil), row...)
	}
	for p := range n.nbr {
		for _, q := range n.nbr[p] {
			if st.Alive[q] {
				if _, ok := slices.BinarySearch(n.nbr[q], PeerID(p)); !ok {
					return nil, fmt.Errorf("overlay: restore: asymmetric edge %d—%d", p, q)
				}
				if PeerID(p) < q && st.Alive[p] {
					n.edges++
				}
			} else {
				// Half-open reference: p (alive — dead—dead was rejected
				// above) still lists crashed q. Rebuild the holder index
				// in the canonical order (ascending holder per dead peer,
				// which the ascending p scan produces).
				if n.danglingAt == nil {
					n.danglingAt = make([][]PeerID, nPeers)
				}
				n.danglingAt[q] = append(n.danglingAt[q], PeerID(p))
				n.dangling++
			}
		}
	}

	for p, hc := range st.HostCache {
		for _, q := range hc {
			if q < 0 || int(q) >= nPeers || q == PeerID(p) {
				return nil, fmt.Errorf("overlay: restore: peer %d host cache holds invalid %d", p, q)
			}
		}
		if len(hc) > 0 {
			n.hostCache[p] = append([]PeerID(nil), hc...)
		}
	}

	// Journal: the retained tail must span exactly (JournalBase, Version]
	// with well-formed events, so restored consumers resynchronize — or
	// resume incrementally — exactly as they would have in-process.
	if st.JournalBase > st.Version {
		return nil, fmt.Errorf("overlay: restore: journal base %d beyond version %d", st.JournalBase, st.Version)
	}
	if got, want := uint64(len(st.Journal)), st.Version-st.JournalBase; got != want {
		return nil, fmt.Errorf("overlay: restore: journal holds %d events, version span needs %d", got, want)
	}
	for i, ev := range st.Journal {
		switch ev.Kind {
		case EventConnect, EventDisconnect:
			if ev.P < 0 || int(ev.P) >= nPeers || ev.Q < 0 || int(ev.Q) >= nPeers {
				return nil, fmt.Errorf("overlay: restore: journal[%d] edge event endpoints out of range", i)
			}
		case EventJoin, EventLeave, EventCrash:
			if ev.P < 0 || int(ev.P) >= nPeers || ev.Q != -1 {
				return nil, fmt.Errorf("overlay: restore: journal[%d] liveness event malformed", i)
			}
		default:
			return nil, fmt.Errorf("overlay: restore: journal[%d] unknown event kind %d", i, ev.Kind)
		}
	}
	if len(st.Journal) > 0 {
		n.journal = append(make([]Event, 0, len(st.Journal)), st.Journal...)
	}
	return n, nil
}
