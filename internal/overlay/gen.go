package overlay

import (
	"fmt"

	"ace/internal/sim"
)

// GenerateRandom brings every peer slot alive and wires a connected
// random overlay with mean degree approximately avgDegree, reproducing
// the paper's logical topology generation (§4.1: logical topologies with
// a given average number of edge connections).
//
// Construction mimics sequential bootstrap joining: each peer first links
// to one uniformly random earlier peer (guaranteeing connectivity exactly
// as a bootstrap chain does), then uniformly random extra links are added
// until the edge budget n·avgDegree/2 is met. Random endpoint selection
// is what creates the overlay/physical mismatch ACE optimizes away.
func GenerateRandom(rng *sim.RNG, net *Network, avgDegree float64) error {
	n := net.N()
	if n < 2 {
		return fmt.Errorf("overlay: need at least 2 peers, got %d", n)
	}
	if avgDegree < 2 {
		return fmt.Errorf("overlay: average degree %.1f below tree minimum 2", avgDegree)
	}
	target := int(float64(n) * avgDegree / 2)
	maxEdges := n * (n - 1) / 2
	if target > maxEdges {
		return fmt.Errorf("overlay: average degree %.1f infeasible for %d peers", avgDegree, n)
	}

	for p := 0; p < n; p++ {
		net.revive(PeerID(p))
	}
	for p := 1; p < n; p++ {
		net.Connect(PeerID(p), PeerID(rng.Intn(p)))
	}
	for guard := 0; net.NumEdges() < target; {
		p, q := PeerID(rng.Intn(n)), PeerID(rng.Intn(n))
		if !net.Connect(p, q) {
			if guard++; guard > 100*maxEdges {
				return fmt.Errorf("overlay: edge placement stalled at %d/%d edges", net.NumEdges(), target)
			}
		}
	}
	return nil
}

// GenerateSmallWorld brings every peer slot alive and wires an overlay
// with the structure §4.1 requires of logical topologies: power-law
// degrees AND small-world clustering. It uses Holme–Kim preferential
// attachment with triad formation: each arriving peer makes its first
// link by degree-proportional choice and each further link, with
// probability triadProb, to a neighbor of a peer it just linked
// (learning addresses from its new neighbor's Ping/Pong, which is where
// real Gnutella clustering comes from), otherwise by another
// degree-proportional choice. Mean degree approaches avgDegree.
//
// The clustering matters beyond realism: ACE's Phase 2 can only demote a
// neighbor to non-flooding when the closure contains an alternative path
// to it, so a clustering-free overlay (GenerateRandom) makes h = 1
// optimization a no-op.
func GenerateSmallWorld(rng *sim.RNG, net *Network, avgDegree int, triadProb float64) error {
	n := net.N()
	if n < 3 {
		return fmt.Errorf("overlay: need at least 3 peers, got %d", n)
	}
	if avgDegree < 2 || avgDegree >= n {
		return fmt.Errorf("overlay: average degree %d infeasible for %d peers", avgDegree, n)
	}
	if triadProb < 0 || triadProb > 1 {
		return fmt.Errorf("overlay: triad probability %v outside [0,1]", triadProb)
	}
	for p := 0; p < n; p++ {
		net.revive(PeerID(p))
	}
	m := avgDegree / 2
	if m < 1 {
		m = 1
	}
	// Degree-proportional urn: push both endpoints of every new edge.
	seed := m + 1
	var urn []PeerID
	for u := 0; u < seed; u++ {
		for v := u + 1; v < seed; v++ {
			net.Connect(PeerID(u), PeerID(v))
			urn = append(urn, PeerID(u), PeerID(v))
		}
	}
	for u := seed; u < n; u++ {
		p := PeerID(u)
		links := m
		if avgDegree%2 == 1 && u%2 == 1 {
			links++ // alternate so odd degrees average out
		}
		var last PeerID = -1
		for made, attempts := 0, 0; made < links && attempts < 50*links; attempts++ {
			var v PeerID = -1
			if last >= 0 && rng.Float64() < triadProb {
				nbrs := net.NeighborsView(last)
				if len(nbrs) > 0 {
					v = nbrs[rng.Intn(len(nbrs))]
				}
			}
			if v < 0 {
				v = urn[rng.Intn(len(urn))]
			}
			if net.Connect(p, v) {
				urn = append(urn, p, v)
				last = v
				made++
			}
		}
	}
	return nil
}

// ClusteringCoefficient samples the mean local clustering coefficient
// over the live peers (all of them when sample <= 0 or exceeds the
// population).
func (n *Network) ClusteringCoefficient(rng *sim.RNG, sample int) float64 {
	peers := n.AlivePeers()
	if sample > 0 && sample < len(peers) {
		rng.Shuffle(len(peers), func(i, j int) { peers[i], peers[j] = peers[j], peers[i] })
		peers = peers[:sample]
	}
	total, counted := 0.0, 0
	for _, p := range peers {
		nbrs := n.NeighborsView(p)
		if len(nbrs) < 2 {
			continue
		}
		links := 0
		for i, a := range nbrs {
			for _, b := range nbrs[i+1:] {
				if n.HasEdge(a, b) {
					links++
				}
			}
		}
		k := len(nbrs)
		total += 2 * float64(links) / float64(k*(k-1))
		counted++
	}
	if counted == 0 {
		return 0
	}
	return total / float64(counted)
}
