package ace_test

// One benchmark per table and figure of the paper's evaluation. Each
// bench regenerates its artifact at BenchScale (laptop size) and reports
// the headline numbers as custom metrics, so
//
//	go test -bench=. -benchmem
//
// doubles as the reproduction harness. cmd/figures runs the same drivers
// at medium/paper scale with full series output.

import (
	"testing"
	"time"

	"ace"
)

func BenchmarkTable1Closure1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		w, err := ace.Walkthrough()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(w.H1.TrafficCost, "tree-traffic")
		b.ReportMetric(w.Blind.TrafficCost, "blind-traffic")
		b.ReportMetric(float64(w.H1.Duplicates), "duplicates")
	}
}

func BenchmarkTable2Closure2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		w, err := ace.Walkthrough()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(w.H2.TrafficCost, "tree-traffic")
		b.ReportMetric(float64(w.H2.Duplicates), "duplicates")
	}
}

func BenchmarkFig3Phase2Example(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := ace.Figure3()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.BlindTraffic, "blind-traffic")
		b.ReportMetric(res.TreeTraffic, "tree-traffic")
	}
}

// benchConvergence backs Figures 7 and 8 (one sweep feeds both).
func benchConvergence(b *testing.B, report func(*ace.ConvergenceResult, *testing.B)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		conv, err := ace.StaticConvergence(ace.BenchScale, []int{4, 10}, 10, 1, ace.PolicyRandom)
		if err != nil {
			b.Fatal(err)
		}
		report(conv, b)
	}
}

func BenchmarkFig7TrafficVsStep(b *testing.B) {
	benchConvergence(b, func(conv *ace.ConvergenceResult, b *testing.B) {
		b.ReportMetric(100*conv.Reduction(4), "reduction-C4-%")
		b.ReportMetric(100*conv.Reduction(10), "reduction-C10-%")
	})
}

func BenchmarkFig8ResponseVsStep(b *testing.B) {
	benchConvergence(b, func(conv *ace.ConvergenceResult, b *testing.B) {
		b.ReportMetric(100*conv.ResponseReduction(4), "resp-reduction-C4-%")
		b.ReportMetric(100*conv.ResponseReduction(10), "resp-reduction-C10-%")
	})
}

func BenchmarkScopeRetention(b *testing.B) {
	benchConvergence(b, func(conv *ace.ConvergenceResult, b *testing.B) {
		sc := conv.Scope[10]
		b.ReportMetric(100*sc[len(sc)-1]/float64(ace.BenchScale.Peers), "scope-%")
	})
}

// benchDynamic backs Figures 9 and 10.
func benchDynamic(b *testing.B, report func(base, aced *ace.DynamicResult, b *testing.B)) {
	b.Helper()
	spec := ace.DefaultDynamicSpec(8, true)
	spec.Duration = 15 * time.Minute
	spec.Window = 100
	for i := 0; i < b.N; i++ {
		_, _, base, aced, err := ace.DynamicFigures(ace.BenchScale, spec)
		if err != nil {
			b.Fatal(err)
		}
		report(base, aced, b)
	}
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func BenchmarkFig9DynamicTraffic(b *testing.B) {
	benchDynamic(b, func(base, aced *ace.DynamicResult, b *testing.B) {
		b.ReportMetric(mean(base.TrafficWindows), "gnutella-traffic")
		b.ReportMetric(mean(aced.TrafficWindows), "ace-traffic")
	})
}

func BenchmarkFig10DynamicResponse(b *testing.B) {
	benchDynamic(b, func(base, aced *ace.DynamicResult, b *testing.B) {
		b.ReportMetric(mean(base.ResponseWindows), "gnutella-resp-ms")
		b.ReportMetric(mean(aced.ResponseWindows[len(aced.ResponseWindows)/2:]), "ace-resp-ms")
	})
}

// benchDepth backs Figures 11–16 (one sweep feeds all six).
func benchDepth(b *testing.B, report func(*ace.DepthResult, *testing.B)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		dr, err := ace.DepthSweep(ace.BenchScale, []int{4, 10}, []int{1, 2, 3, 4}, 8)
		if err != nil {
			b.Fatal(err)
		}
		report(dr, b)
	}
}

func BenchmarkFig11ReductionVsDepth(b *testing.B) {
	benchDepth(b, func(dr *ace.DepthResult, b *testing.B) {
		b.ReportMetric(100*dr.ReductionRate[10][1], "reduction-C10-h1-%")
		b.ReportMetric(100*dr.ReductionRate[10][4], "reduction-C10-h4-%")
	})
}

func BenchmarkFig12OverheadVsDepth(b *testing.B) {
	benchDepth(b, func(dr *ace.DepthResult, b *testing.B) {
		b.ReportMetric(dr.OverheadPerCycle[10][1], "overhead-h1")
		b.ReportMetric(dr.OverheadPerCycle[10][4], "overhead-h4")
	})
}

func BenchmarkFig13RateVsDepthC10(b *testing.B) {
	benchDepth(b, func(dr *ace.DepthResult, b *testing.B) {
		b.ReportMetric(dr.Rate(10, 1, 2), "rate-h1-R2")
		b.ReportMetric(dr.Rate(10, 4, 2), "rate-h4-R2")
	})
}

func BenchmarkFig14RateVsDepthC4(b *testing.B) {
	benchDepth(b, func(dr *ace.DepthResult, b *testing.B) {
		b.ReportMetric(dr.Rate(4, 1, 2), "rate-h1-R2")
		b.ReportMetric(dr.Rate(4, 4, 2), "rate-h4-R2")
	})
}

func BenchmarkFig15RateVsRatioC10(b *testing.B) {
	benchDepth(b, func(dr *ace.DepthResult, b *testing.B) {
		b.ReportMetric(float64(dr.MinimalDepth(10, 1)), "minh-R1")
		b.ReportMetric(float64(dr.MinimalDepth(10, 2)), "minh-R2")
	})
}

func BenchmarkFig16RateVsRatioC4(b *testing.B) {
	benchDepth(b, func(dr *ace.DepthResult, b *testing.B) {
		b.ReportMetric(float64(dr.MinimalDepth(4, 2)), "minh-R2")
		b.ReportMetric(float64(dr.MinimalDepth(4, 3)), "minh-R3")
	})
}

func BenchmarkCacheCombo(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := ace.CacheCombo(ace.BenchScale, 8, 1, 50, 200, 1500, 0.8)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*res.TrafficReduction(), "traffic-reduction-%")
		b.ReportMetric(100*res.ResponseReduction(), "resp-reduction-%")
	}
}

func BenchmarkPolicyAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := ace.PolicyAblation(ace.BenchScale, 8, 8, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRealWorldSnapshot(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := ace.RealWorld(ace.BenchScale, 8, 8, 1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*res.SnapshotReduction, "snapshot-reduction-%")
	}
}

// BenchmarkQueryEvaluation measures the raw evaluator cost (not a paper
// artifact; the per-query engine underlying every figure).
func BenchmarkQueryEvaluation(b *testing.B) {
	sys, err := ace.NewSystem(ace.WithSeed(1), ace.WithSize(1200, 400), ace.WithAvgDegree(8))
	if err != nil {
		b.Fatal(err)
	}
	sys.Optimize(6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.Query(ace.PeerID(i%400), 0, nil)
	}
}

// BenchmarkOptimizerRound measures one full ACE round.
func BenchmarkOptimizerRound(b *testing.B) {
	sys, err := ace.NewSystem(ace.WithSeed(1), ace.WithSize(1200, 400), ace.WithAvgDegree(8))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.Optimize(1)
	}
}

func BenchmarkBaselinesACEvsAOTOvsLTM(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := ace.Baselines(ace.BenchScale, 8, 8)
		if err != nil {
			b.Fatal(err)
		}
		final := func(name string) float64 {
			tr := res.Traffic[name]
			return 100 * (1 - tr[len(tr)-1]/tr[0])
		}
		b.ReportMetric(final("ACE"), "ACE-reduction-%")
		b.ReportMetric(final("AOTO"), "AOTO-reduction-%")
		b.ReportMetric(final("LTM"), "LTM-reduction-%")
	}
}

func BenchmarkRandomWalkMismatch(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := ace.Walks(ace.BenchScale, 8, 8, 8, 256)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.BeforeTraffic, "walk-traffic-before")
		b.ReportMetric(res.AfterTraffic, "walk-traffic-after")
	}
}

func BenchmarkSubstrateRobustness(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := ace.Robustness(ace.BenchScale, 8, 8)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*res.BAReduction, "BA-reduction-%")
		b.ReportMetric(100*res.TransitStubReduction, "transitstub-reduction-%")
	}
}

func BenchmarkTwoTierSupernodes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := ace.TwoTier(ace.BenchScale, 8, 8)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Traffic["random"]["blind"], "random-blind-traffic")
		b.ReportMetric(res.Traffic["nearest"]["ace"], "nearest-ace-traffic")
	}
}

func BenchmarkDesignAblations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := ace.Ablation(ace.BenchScale, 8, 8)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*res.Reduction["full"], "full-reduction-%")
		b.ReportMetric(100*res.Reduction["sparse-knowledge"], "sparse-reduction-%")
		b.ReportMetric(100*res.Reduction["no-election"], "noelection-reduction-%")
	}
}
