package ace

import (
	"time"

	"ace/internal/experiments"
	"ace/internal/report"
)

// Figure and Table are the rendered experiment artifacts.
type (
	// Figure is labelled curve data with RenderSeries / Chart output.
	Figure = report.Figure
	// Table is a rendered table.
	Table = report.Table
	// ConvergenceResult backs Figures 7–8.
	ConvergenceResult = experiments.ConvergenceResult
	// DepthResult backs Figures 11–16.
	DepthResult = experiments.DepthResult
	// DynamicSpec parameterizes the churn runs of Figures 9–10.
	DynamicSpec = experiments.DynamicSpec
	// DynamicResult is one churn run's windowed metrics.
	DynamicResult = experiments.DynamicResult
	// CacheComboResult is the §5.2 ACE+index-cache experiment.
	CacheComboResult = experiments.CacheComboResult
	// WalkthroughResult reproduces Tables 1–2.
	WalkthroughResult = experiments.WalkthroughResult
	// Fig3Result reproduces the Figure-3 Phase-2 demonstration.
	Fig3Result = experiments.Fig3Result
	// RealWorldResult is the real-world-trace consistency check.
	RealWorldResult = experiments.RealWorldResult
	// BaselinesResult compares ACE with AOTO and LTM (§2).
	BaselinesResult = experiments.BaselinesResult
	// WalkComparison is the random-walk mismatch demonstration.
	WalkComparison = experiments.WalkComparison
	// RobustnessResult compares substrate generators.
	RobustnessResult = experiments.RobustnessResult
	// TwoTierResult is the KaZaA-style supernode-tier experiment.
	TwoTierResult = experiments.TwoTierResult
	// ChurnSweepResult is the churn-intensity sensitivity sweep.
	ChurnSweepResult = experiments.ChurnSweepResult
	// FaultSpec parameterizes the fault-injection sweep.
	FaultSpec = experiments.FaultSpec
	// FaultSweepResult is the loss × crash degradation grid.
	FaultSweepResult = experiments.FaultSweepResult
	// AblationResult quantifies the DESIGN.md §5 reconstruction choices.
	AblationResult = experiments.AblationResult
)

// StaticConvergence regenerates Figures 7 and 8: per-step traffic cost
// and response time for the given average degrees.
func StaticConvergence(sc Scale, cs []int, steps, h int, policy Policy) (*ConvergenceResult, error) {
	return experiments.StaticConvergence(sc, cs, steps, h, policy)
}

// DepthSweep collects the (C, h) data behind Figures 11–16.
func DepthSweep(sc Scale, cs, hs []int, steps int) (*DepthResult, error) {
	return experiments.DepthSweep(sc, cs, hs, steps)
}

// DefaultDynamicSpec mirrors the paper's §4.3 dynamic environment.
func DefaultDynamicSpec(c int, withACE bool) DynamicSpec {
	return experiments.DefaultDynamicSpec(c, withACE)
}

// DynamicFigures regenerates Figures 9 and 10: traffic cost and response
// time per query under churn, Gnutella baseline vs ACE.
func DynamicFigures(sc Scale, spec DynamicSpec) (fig9, fig10 Figure, base, aced *DynamicResult, err error) {
	return experiments.DynamicFigures(sc, spec)
}

// CacheCombo regenerates the §5.2 ACE+index-cache experiment.
func CacheCombo(sc Scale, c, h, cacheSize, keywords, nQueries int, zipfS float64) (*CacheComboResult, error) {
	return experiments.CacheCombo(sc, c, h, cacheSize, keywords, nQueries, zipfS)
}

// PolicyAblation compares the §6 replacement policies.
func PolicyAblation(sc Scale, c, steps, h int) (Figure, *Table, error) {
	return experiments.PolicyAblation(sc, c, steps, h)
}

// Walkthrough regenerates the Table 1 / Table 2 worked example.
func Walkthrough() (*WalkthroughResult, error) { return experiments.Walkthrough() }

// Figure3 regenerates the Phase-2 worked example of Figure 3.
func Figure3() (*Fig3Result, error) { return experiments.Figure3() }

// RealWorld runs the real-world-snapshot consistency check.
func RealWorld(sc Scale, c, steps, h int) (*RealWorldResult, error) {
	return experiments.RealWorld(sc, c, steps, h)
}

// Baselines compares ACE with the related schemes of §2 — AOTO (the
// preliminary design) and LTM (the detector-based alternative) — on
// identical topologies.
func Baselines(sc Scale, c, steps int) (*BaselinesResult, error) {
	return experiments.Baselines(sc, c, steps)
}

// Walks runs the k-walker random-walk baseline before and after ACE,
// demonstrating that topology mismatch limits heuristic routing too.
func Walks(sc Scale, c, steps, walkers, maxHops int) (*WalkComparison, error) {
	return experiments.Walks(sc, c, steps, walkers, maxHops)
}

// Robustness reruns the convergence experiment on a transit-stub
// substrate to show the gains are generator-independent.
func Robustness(sc Scale, c, steps int) (*RobustnessResult, error) {
	return experiments.Robustness(sc, c, steps)
}

// TwoTier measures the KaZaA-style two-tier overlay of the paper's
// introduction: leaf assignment {random, nearest} × supernode routing
// {blind, ACE}.
func TwoTier(sc Scale, c, steps int) (*TwoTierResult, error) {
	return experiments.TwoTier(sc, c, steps)
}

// ChurnSweep measures ACE's dynamic gain across churn intensities.
func ChurnSweep(sc Scale, c int, lifetimes []time.Duration, duration time.Duration) (*ChurnSweepResult, error) {
	return experiments.ChurnSweep(sc, c, lifetimes, duration)
}

// DefaultFaultSpec is the loss × crash grid the robustness table reports.
func DefaultFaultSpec(c int) FaultSpec { return experiments.DefaultFaultSpec(c) }

// FaultSweep measures graceful degradation under deterministic fault
// injection: message loss, probe timeouts, connect failures, and
// crash-failures across the spec's grid.
func FaultSweep(sc Scale, spec FaultSpec) (*FaultSweepResult, error) {
	return experiments.FaultSweep(sc, spec)
}

// Ablation turns the reconstruction's load-bearing design choices off
// one at a time (DESIGN.md §5) and measures what each costs.
func Ablation(sc Scale, c, steps int) (*AblationResult, error) {
	return experiments.Ablation(sc, c, steps)
}
