package ace_test

import (
	"testing"
	"time"

	"ace"
)

// microScale keeps the facade wiring test to a couple of seconds while
// touching every public experiment driver.
var microScale = ace.Scale{
	PhysicalNodes:      400,
	Peers:              120,
	Seeds:              []int64{1},
	QueriesPerPoint:    8,
	TTL:                1 << 20,
	RespondersPerQuery: 2,
}

func TestFacadeWiring(t *testing.T) {
	conv, err := ace.StaticConvergence(microScale, []int{6}, 3, 1, ace.PolicyRandom)
	if err != nil || conv.Reduction(6) <= 0 {
		t.Fatalf("StaticConvergence: %v / %+v", err, conv)
	}
	dr, err := ace.DepthSweep(microScale, []int{6}, []int{1, 2}, 3)
	if err != nil || dr.ReductionRate[6][1] <= 0 {
		t.Fatalf("DepthSweep: %v", err)
	}
	spec := ace.DefaultDynamicSpec(6, true)
	spec.Duration = 3 * time.Minute
	spec.Window = 20
	if _, _, base, aced, err := ace.DynamicFigures(microScale, spec); err != nil || base.Queries == 0 || aced.Queries == 0 {
		t.Fatalf("DynamicFigures: %v", err)
	}
	if res, err := ace.CacheCombo(microScale, 6, 1, 10, 30, 120, 0.9); err != nil || res.CacheHitRate <= 0 {
		t.Fatalf("CacheCombo: %v", err)
	}
	if fig, tbl, err := ace.PolicyAblation(microScale, 6, 2, 1); err != nil || len(fig.Curves) != 3 || tbl == nil {
		t.Fatalf("PolicyAblation: %v", err)
	}
	if res, err := ace.Figure3(); err != nil || res.TreeTraffic >= res.BlindTraffic {
		t.Fatalf("Figure3: %v", err)
	}
	if res, err := ace.RealWorld(microScale, 6, 3, 1); err != nil || res.SnapshotReduction <= 0 {
		t.Fatalf("RealWorld: %v", err)
	}
	if res, err := ace.Baselines(microScale, 6, 3); err != nil || len(res.Traffic) != 3 {
		t.Fatalf("Baselines: %v", err)
	}
	if res, err := ace.Walks(microScale, 6, 3, 4, 64); err != nil || res.BeforeTraffic <= 0 {
		t.Fatalf("Walks: %v", err)
	}
	if res, err := ace.Robustness(microScale, 6, 3); err != nil || res.TransitStubReduction <= 0 {
		t.Fatalf("Robustness: %v", err)
	}
	if res, err := ace.TwoTier(microScale, 6, 3); err != nil || res.Traffic["random"]["ace"] <= 0 {
		t.Fatalf("TwoTier: %v", err)
	}
	if res, err := ace.ChurnSweep(microScale, 6, []time.Duration{5 * time.Minute}, 4*time.Minute); err != nil || len(res.Reduction) != 1 {
		t.Fatalf("ChurnSweep: %v", err)
	}
	if cfg := ace.DefaultConfig(2); cfg.Depth != 2 {
		t.Fatalf("DefaultConfig: %+v", cfg)
	}
}

func TestFacadeForwarders(t *testing.T) {
	sys, err := ace.NewSystem(ace.WithSeed(3), ace.WithSize(400, 120), ace.WithAvgDegree(6))
	if err != nil {
		t.Fatal(err)
	}
	sys.Optimize(2)
	if sys.Forwarder() == nil || sys.BlindForwarder() == nil {
		t.Fatal("forwarder accessors returned nil")
	}
	if sys.Env() == nil || sys.Env().Net != sys.Network() {
		t.Fatal("Env accessor inconsistent")
	}
}
