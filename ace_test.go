package ace_test

import (
	"testing"

	"ace"
)

func TestNewSystemDefaults(t *testing.T) {
	sys, err := ace.NewSystem()
	if err != nil {
		t.Fatal(err)
	}
	if sys.Network().NumAlive() != 500 {
		t.Fatalf("default peers = %d, want 500", sys.Network().NumAlive())
	}
	if !sys.Network().IsConnected() {
		t.Fatal("default overlay disconnected")
	}
}

func TestNewSystemOptions(t *testing.T) {
	sys, err := ace.NewSystem(
		ace.WithSeed(9),
		ace.WithSize(800, 200),
		ace.WithAvgDegree(6),
		ace.WithDepth(2),
		ace.WithPolicy(ace.PolicyClosest),
	)
	if err != nil {
		t.Fatal(err)
	}
	if sys.Network().NumAlive() != 200 {
		t.Fatalf("peers = %d, want 200", sys.Network().NumAlive())
	}
	if got := sys.Optimizer().Config(); got.Depth != 2 || got.Policy != ace.PolicyClosest {
		t.Fatalf("config not applied: %+v", got)
	}
	if _, err := ace.NewSystem(ace.WithSize(100, 200)); err == nil {
		t.Fatal("peers > physical nodes accepted")
	}
}

func TestSystemOptimizeImprovesQueries(t *testing.T) {
	sys, err := ace.NewSystem(ace.WithSeed(2), ace.WithSize(900, 250), ace.WithAvgDegree(8))
	if err != nil {
		t.Fatal(err)
	}
	responders := map[ace.PeerID]bool{99: true}
	before := sys.QueryBlind(0, 0, responders)
	if before.Scope != 250 {
		t.Fatalf("blind scope = %d, want 250", before.Scope)
	}
	sys.Optimize(8)
	after := sys.Query(0, 0, responders)
	if after.Scope < 249 {
		t.Fatalf("ACE scope = %d, want >= 249", after.Scope)
	}
	if after.TrafficCost >= before.TrafficCost {
		t.Fatalf("ACE traffic %v not below blind %v", after.TrafficCost, before.TrafficCost)
	}
}

func TestSystemDeterministic(t *testing.T) {
	run := func() float64 {
		sys, err := ace.NewSystem(ace.WithSeed(4), ace.WithSize(700, 180), ace.WithAvgDegree(6))
		if err != nil {
			t.Fatal(err)
		}
		sys.Optimize(5)
		return sys.Query(0, 0, nil).TrafficCost
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("same seed diverged: %v vs %v", a, b)
	}
}

func TestSystemTTL(t *testing.T) {
	sys, err := ace.NewSystem(ace.WithSeed(5), ace.WithSize(700, 180), ace.WithAvgDegree(6))
	if err != nil {
		t.Fatal(err)
	}
	if r := sys.QueryBlind(0, 1, nil); r.Scope >= 180 {
		t.Fatalf("TTL=1 blind scope %d should be bounded by the degree", r.Scope)
	}
}
