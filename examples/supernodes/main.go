// Supernodes: the paper's introduction notes that queries are "flooded
// among peers (such as in Gnutella) or among supernodes (such as in
// KaZaA)". This example builds the two-tier deployment — leaves homed on
// supernodes that index their content — and runs ACE on the supernode
// tier, where the mismatch problem lives.
//
//	go run ./examples/supernodes
package main

import (
	"fmt"
	"log"
	"math"

	"ace"
	"ace/internal/core"
	"ace/internal/metrics"
	"ace/internal/sim"
	"ace/internal/supernode"
)

func main() {
	// 40 supernodes over a 1,500-node physical network, with 400 leaves.
	sys, err := ace.NewSystem(ace.WithSeed(13), ace.WithSize(1500, 40), ace.WithAvgDegree(6))
	if err != nil {
		log.Fatal(err)
	}
	super := sys.Network()
	rng := sim.NewRNG(14)
	tier, err := supernode.Build(rng.Derive("tier"), super, super.Oracle(), 400, supernode.AssignNearest)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("two-tier overlay: %d supernodes, %d leaves (nearest homing)\n",
		super.NumAlive(), tier.NumLeaves())

	// Each leaf shares one of 100 files.
	pub := rng.Derive("publish")
	for i := 0; i < tier.NumLeaves(); i++ {
		tier.Publish(i, pub.Intn(100))
	}

	workload := func(fwd core.Forwarder) (float64, float64, int) {
		q := rng.Derive("workload") // same stream both times
		var traffic, response metrics.Agg
		misses := 0
		for i := 0; i < 300; i++ {
			r := tier.Query(fwd, q.Intn(tier.NumLeaves()), q.Intn(100), 1<<20)
			traffic.Add(r.TrafficCost)
			if math.IsInf(r.FirstResponse, 1) {
				misses++
			} else {
				response.Add(r.FirstResponse)
			}
		}
		return traffic.Mean(), response.Mean(), misses
	}

	bt, br, bm := workload(sys.BlindForwarder())
	fmt.Printf("blind flooding among supernodes: traffic %.0f, response %.1f ms, %d misses\n", bt, br, bm)

	sys.Optimize(10)
	at, ar, am := workload(sys.Forwarder())
	fmt.Printf("after 10 ACE rounds on the tier: traffic %.0f, response %.1f ms, %d misses\n", at, ar, am)
	fmt.Printf("\ntraffic −%.1f%%, response −%.1f%%\n", 100*(1-at/bt), 100*(1-ar/br))

	// The leaf uplink is untouched by ACE — report it for context.
	var uplink metrics.Agg
	for i := 0; i < tier.NumLeaves(); i++ {
		uplink.Add(tier.UplinkCost(i))
	}
	fmt.Printf("mean leaf uplink (fixed by homing policy): %.1f ms\n", uplink.Mean())
}
