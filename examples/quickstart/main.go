// Quickstart: build a small P2P system, watch blind flooding waste
// traffic on a mismatched overlay, run ACE, and compare.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"ace"
)

func main() {
	// A 1,500-node Internet-like physical topology with 400 peers wired
	// into a Gnutella-style overlay of average degree 8. Everything is
	// deterministic under the seed.
	sys, err := ace.NewSystem(
		ace.WithSeed(7),
		ace.WithSize(1500, 400),
		ace.WithAvgDegree(8),
		ace.WithDepth(1),
	)
	if err != nil {
		log.Fatal(err)
	}

	// One full-scope query from peer 0 with blind flooding: every link
	// is crossed both ways, and the same message hits peers many times.
	responders := map[ace.PeerID]bool{250: true}
	before := sys.QueryBlind(0, 0, responders)
	fmt.Println("blind flooding (the mismatch problem):")
	fmt.Printf("  scope %d peers, traffic cost %.0f, %d transmissions (%d pure duplicates)\n",
		before.Scope, before.TrafficCost, before.Transmissions, before.Duplicates)
	fmt.Printf("  first response after %.1f ms\n\n", before.FirstResponse)

	// Ten ACE rounds: probe neighbors, exchange cost tables, build the
	// per-peer multicast trees, and adaptively replace far neighbors
	// with near ones.
	rep := sys.Optimize(10)
	fmt.Printf("ran 10 ACE rounds (last round: %d replacements, %d tentative links)\n\n",
		rep.Replacements, rep.KeptNew)

	after := sys.Query(0, 0, responders)
	fmt.Println("ACE multicast trees:")
	fmt.Printf("  scope %d peers, traffic cost %.0f, %d transmissions (%d duplicates)\n",
		after.Scope, after.TrafficCost, after.Transmissions, after.Duplicates)
	fmt.Printf("  first response after %.1f ms\n\n", after.FirstResponse)

	fmt.Printf("traffic cost: −%.1f%%, response time: −%.1f%%, scope retained: %v\n",
		100*(1-after.TrafficCost/before.TrafficCost),
		100*(1-after.FirstResponse/before.FirstResponse),
		after.Scope == before.Scope)
}
