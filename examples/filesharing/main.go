// File sharing: the workload the paper's introduction motivates — a
// Gnutella-like network where peers share files with Zipf popularity and
// search by flooding. Compares user-visible quality of service (success
// rate, response time) and network load with and without ACE, then adds
// the §5.2 response index cache on top.
//
//	go run ./examples/filesharing
package main

import (
	"fmt"
	"log"
	"math"

	"ace"
	"ace/internal/cache"
	"ace/internal/gnutella"
	"ace/internal/metrics"
	"ace/internal/overlay"
	"ace/internal/sim"
)

const (
	nPeers    = 400
	nFiles    = 300
	replicas  = 3   // copies of each file
	nQueries  = 800 // search workload
	zipfS     = 0.9 // popularity skew
	cacheSize = 40  // per-peer response index entries
)

func main() {
	sys, err := ace.NewSystem(ace.WithSeed(11), ace.WithSize(1500, nPeers), ace.WithAvgDegree(8))
	if err != nil {
		log.Fatal(err)
	}
	net := sys.Network()
	rng := sim.NewRNG(42)

	// Place files: each file lives on `replicas` random peers.
	holders := make(map[int]map[overlay.PeerID]bool, nFiles)
	alive := net.AlivePeers()
	for f := 0; f < nFiles; f++ {
		m := make(map[overlay.PeerID]bool, replicas)
		for len(m) < replicas {
			m[alive[rng.Intn(len(alive))]] = true
		}
		holders[f] = m
	}
	holds := func(p overlay.PeerID, f int) bool { return holders[f][p] }

	type outcome struct {
		traffic, response metrics.Agg
		success           int
	}
	workload := func(run func(src overlay.PeerID, file int) (float64, float64, bool)) outcome {
		wrng := sim.NewRNG(43)
		wz := sim.NewZipf(wrng.Derive("zipf"), nFiles, zipfS)
		var o outcome
		for i := 0; i < nQueries; i++ {
			src := alive[wrng.Intn(len(alive))]
			traffic, response, ok := run(src, wz.Draw())
			o.traffic.Add(traffic)
			o.response.Add(response)
			if ok {
				o.success++
			}
		}
		return o
	}

	blind := workload(func(src overlay.PeerID, f int) (float64, float64, bool) {
		r := gnutella.Evaluate(net, sys.BlindForwarder(), src, gnutella.DefaultTTL, holders[f])
		return r.TrafficCost, r.FirstResponse, !math.IsInf(r.FirstResponse, 1)
	})

	fmt.Println("optimizing the overlay with 10 ACE rounds…")
	sys.Optimize(10)

	aceOut := workload(func(src overlay.PeerID, f int) (float64, float64, bool) {
		r := gnutella.Evaluate(net, sys.Forwarder(), src, gnutella.DefaultTTL, holders[f])
		return r.TrafficCost, r.FirstResponse, !math.IsInf(r.FirstResponse, 1)
	})

	store := cache.NewStore(cacheSize)
	cached := workload(func(src overlay.PeerID, f int) (float64, float64, bool) {
		r := cache.Evaluate(net, sys.Forwarder(), src, gnutella.DefaultTTL, f, holds, store)
		return r.TrafficCost, r.FirstResponse, !math.IsInf(r.FirstResponse, 1)
	})

	row := func(name string, o outcome) {
		fmt.Printf("%-16s  traffic %9.0f  response %7.1f ms  success %5.1f%%\n",
			name, o.traffic.Mean(), o.response.Mean(), 100*float64(o.success)/nQueries)
	}
	fmt.Printf("\n%d queries over %d files (%d replicas each, Zipf s=%.1f):\n", nQueries, nFiles, replicas, zipfS)
	row("blind flooding", blind)
	row("ACE trees", aceOut)
	row("ACE + index", cached)
	fmt.Printf("\nACE+cache vs blind: traffic −%.1f%%, response −%.1f%%\n",
		100*(1-cached.traffic.Mean()/blind.traffic.Mean()),
		100*(1-cached.response.Mean()/blind.response.Mean()))
}
