// Closure study: the §5.3 engineering question — given how often your
// network's peers query relative to how often ACE exchanges cost tables
// (the frequency ratio R), which closure depth h is worth running?
// Sweeps (C, h), computes the optimization (gain/penalty) rate, and
// prints the minimal profitable depth per R.
//
//	go run ./examples/closurestudy
package main

import (
	"fmt"
	"log"

	"ace"
)

func main() {
	sc := ace.BenchScale
	sc.Peers = 300
	sc.PhysicalNodes = 1000

	hs := []int{1, 2, 3, 4, 5}
	fmt.Println("sweeping closure depths 1–5 at average degrees 4 and 10…")
	dr, err := ace.DepthSweep(sc, []int{4, 10}, hs, 10)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nper-depth results (traffic reduction vs blind flooding, exchange overhead per cycle):")
	for _, c := range []int{4, 10} {
		for _, h := range hs {
			fmt.Printf("  C=%-2d h=%d: reduction %5.1f%%  overhead %8.0f  scope ratio %.3f\n",
				c, h, 100*dr.ReductionRate[c][h], dr.OverheadPerCycle[c][h], dr.ScopeRatio[c][h])
		}
	}

	fmt.Println("\noptimization rate = R × (traffic saved per query) / (overhead per exchange cycle)")
	fmt.Println("ACE pays off only when the rate exceeds 1 (§4.2):")
	fmt.Printf("%-6s", "R")
	for _, h := range hs {
		fmt.Printf("  C=10,h=%d", h)
	}
	fmt.Println()
	for _, r := range []float64{0.5, 1.0, 1.5, 2.0, 3.0} {
		fmt.Printf("%-6.1f", r)
		for _, h := range hs {
			fmt.Printf("    %6.2f", dr.Rate(10, h, r))
		}
		fmt.Println()
	}

	fmt.Println("\nminimal profitable depth (0 = not worth running at that R):")
	for _, c := range []int{4, 10} {
		for _, r := range []float64{1.0, 1.5, 2.0, 3.0} {
			fmt.Printf("  C=%-2d R=%.1f → h_min = %d\n", c, r, dr.MinimalDepth(c, r))
		}
	}
	fmt.Println("\nthe paper's guidance holds: R = 1 is never profitable, larger R lowers")
	fmt.Println("the required depth, and denser overlays (larger C) profit at shallower h.")
}
