// Dynamic churn: the paper's §4.3 environment — peers join and leave
// with 10-minute mean lifetimes while issuing Poisson queries, and ACE
// re-optimizes twice a minute. This example runs the message-level
// discrete-event engine (every query and query-hit is an individual
// timed message) rather than the closed-form evaluator the sweeps use.
//
//	go run ./examples/dynamicchurn
package main

import (
	"fmt"
	"log"
	"math"
	"time"

	"ace"
	"ace/internal/churn"
	"ace/internal/gnutella"
	"ace/internal/metrics"
	"ace/internal/overlay"
	"ace/internal/sim"
)

func main() {
	sys, err := ace.NewSystem(ace.WithSeed(3), ace.WithSize(1200, 360), ace.WithAvgDegree(8))
	if err != nil {
		log.Fatal(err)
	}
	net := sys.Network()
	opt := sys.Optimizer()

	// Free a third of the slots so churn has a replacement pool.
	kill := net.AlivePeers()
	for i := 0; i < len(kill)/4; i++ {
		net.Leave(kill[i*4])
	}

	eng := sim.NewEngine()
	rng := sim.NewRNG(99)
	msgEngine := gnutella.NewEngine(eng, net, sys.Forwarder())
	msgEngine.Horizon = 30 * time.Second

	model := churn.DefaultModel(8)
	model.MeanLifetime = 5 * time.Minute // brisk churn for a short demo
	model.StdDevLifetime = 150 * time.Second
	driver, err := churn.NewDriver(eng, net, model, rng.Derive("churn"))
	if err != nil {
		log.Fatal(err)
	}

	var traffic, response metrics.Agg
	var queries, failed int
	qrng := rng.Derive("workload")
	driver.OnQuery = func(src overlay.PeerID) {
		// Each object lives on three random replicas, as file-sharing
		// replication typically provides.
		alive := net.AlivePeers()
		responders := map[overlay.PeerID]bool{}
		for len(responders) < 3 {
			responders[alive[qrng.Intn(len(alive))]] = true
		}
		qs := msgEngine.InjectQuery(src, 2*gnutella.DefaultTTL, 0,
			func(p overlay.PeerID, _ int) bool { return responders[p] })
		queries++
		// Collect the stats once the flood has settled.
		eng.After(20*time.Second, func() {
			traffic.Add(qs.TrafficCost)
			if math.IsInf(qs.FirstResponse, 1) {
				failed++
			} else {
				response.Add(qs.FirstResponse)
			}
		})
	}

	// ACE runs twice a minute, and peers ping for fresh addresses.
	optRNG := rng.Derive("opt")
	var aceTick func()
	aceTick = func() {
		opt.Round(optRNG)
		eng.After(30*time.Second, aceTick)
	}
	eng.After(30*time.Second, aceTick)

	driver.Start()
	const horizon = 25 * time.Minute
	for t := 5 * time.Minute; t <= horizon; t += 5 * time.Minute {
		eng.RunUntil(t)
		joins, leaves, _ := driver.Counts()
		fmt.Printf("t=%-4s peers=%d degree=%.1f joins=%d leaves=%d queries=%d  traffic/query=%.0f  response=%.1f ms  failed=%d\n",
			t, net.NumAlive(), net.AverageDegree(), joins, leaves, queries, traffic.Mean(), response.Mean(), failed)
	}
	fmt.Printf("\noptimization overhead so far: %.0f traffic-cost units over %v\n",
		opt.TotalOverhead(), horizon)
}
