module ace

go 1.24
