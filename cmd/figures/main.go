// Command figures regenerates every table and figure of the paper's
// evaluation (§3 worked examples, §5 experiments) and prints the series
// as aligned rows plus an optional ASCII chart.
//
// Usage:
//
//	figures -exp all -scale medium
//	figures -exp fig7 -scale paper -steps 16
//	figures -exp table1
//
// Experiments: table1 table2 fig3 fig7 fig8 fig9 fig10 fig11 fig12
// fig13 fig14 fig15 fig16 (or depth, all six from one sweep) scope
// cache policy baselines walks robust
// twotier churnsweep faultsweep ablation realworld all.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"ace"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (table1, fig7, …, all)")
	scale := flag.String("scale", "medium", "bench | medium | paper")
	steps := flag.Int("steps", 12, "ACE optimization steps per run")
	chart := flag.Bool("chart", true, "render ASCII charts")
	csvDir := flag.String("csv", "", "also write each figure as CSV into this directory")
	minutes := flag.Int("minutes", 40, "simulated minutes for the dynamic runs")
	seeds := flag.String("seeds", "", "comma-separated topology seeds overriding the scale preset")
	flag.Parse()

	var sc ace.Scale
	switch *scale {
	case "bench":
		sc = ace.BenchScale
	case "medium":
		sc = ace.MediumScale
	case "paper":
		sc = ace.PaperScale
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scale)
		os.Exit(2)
	}
	if *seeds != "" {
		sc.Seeds = sc.Seeds[:0]
		for _, part := range strings.Split(*seeds, ",") {
			v, err := strconv.ParseInt(strings.TrimSpace(part), 10, 64)
			if err != nil {
				fmt.Fprintf(os.Stderr, "bad seed %q: %v\n", part, err)
				os.Exit(2)
			}
			sc.Seeds = append(sc.Seeds, v)
		}
	}

	run := func(id string) bool { return *exp == "all" || *exp == id }
	printFig := func(fig ace.Figure) {
		fmt.Println(fig.RenderSeries())
		if *chart {
			fmt.Println(fig.Chart(14, 56))
		}
		if *csvDir != "" {
			path := filepath.Join(*csvDir, fig.ID+".csv")
			if err := os.WriteFile(path, []byte(fig.CSV()), 0o644); err != nil {
				fatal(err)
			}
			fmt.Printf("wrote %s\n\n", path)
		}
	}
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fatal(err)
		}
	}
	start := time.Now()
	any := false

	if run("table1") || run("table2") || run("fig3") {
		any = true
		if err := workedExamples(run); err != nil {
			fatal(err)
		}
	}

	if run("fig7") || run("fig8") || run("scope") {
		any = true
		conv, err := ace.StaticConvergence(sc, []int{4, 6, 8, 10}, *steps, 1, ace.PolicyRandom)
		if err != nil {
			fatal(err)
		}
		if run("fig7") {
			printFig(conv.TrafficFigure())
		}
		if run("fig8") {
			printFig(conv.ResponseFigure())
		}
		if run("scope") {
			printFig(conv.ScopeFigure())
		}
		for _, c := range []int{4, 6, 8, 10} {
			fmt.Printf("C=%-2d converged: traffic −%.1f%%  response −%.1f%%\n",
				c, 100*conv.Reduction(c), 100*conv.ResponseReduction(c))
		}
		fmt.Println()
	}

	if run("fig9") || run("fig10") {
		any = true
		spec := ace.DefaultDynamicSpec(8, true)
		spec.Duration = time.Duration(*minutes) * time.Minute
		fig9, fig10, base, aced, err := ace.DynamicFigures(sc, spec)
		if err != nil {
			fatal(err)
		}
		if run("fig9") {
			printFig(fig9)
		}
		if run("fig10") {
			printFig(fig10)
		}
		fmt.Printf("dynamic: %d baseline queries, %d ACE queries; mean scope %.1f vs %.1f; failed %d vs %d\n\n",
			base.Queries, aced.Queries, base.MeanScope, aced.MeanScope, base.FailedQueries, aced.FailedQueries)
	}

	// "depth" prints Figures 11–16 from a single sweep.
	needDepth := run("fig11") || run("fig12") || run("fig13") || run("fig14") || run("fig15") || run("fig16") || run("depth")
	if needDepth {
		any = true
		hs := []int{1, 2, 3, 4, 5, 6, 7, 8}
		dr, err := ace.DepthSweep(sc, []int{4, 6, 8, 10}, hs, *steps)
		if err != nil {
			fatal(err)
		}
		if run("fig11") || run("depth") {
			printFig(dr.ReductionFigure())
		}
		if run("fig12") || run("depth") {
			printFig(dr.OverheadFigure())
		}
		rsLow := []float64{1.0, 1.2, 1.4, 1.6, 1.8, 2.0}
		rsHigh := []float64{1.0, 1.5, 2.0, 2.5, 3.0, 3.5}
		if run("fig13") || run("depth") {
			printFig(dr.RateVsDepthFigure("fig13", 10, rsLow))
		}
		if run("fig14") || run("depth") {
			printFig(dr.RateVsDepthFigure("fig14", 4, rsHigh))
		}
		rSweep := []float64{0.5, 1.0, 1.5, 2.0, 2.5, 3.0}
		if run("fig15") || run("depth") {
			printFig(dr.RateVsRatioFigure("fig15", 10, rSweep))
		}
		if run("fig16") || run("depth") {
			printFig(dr.RateVsRatioFigure("fig16", 4, rSweep))
		}
		for _, c := range []int{4, 10} {
			for _, r := range []float64{1.0, 1.5, 2.0, 3.0} {
				fmt.Printf("minimal h for rate ≥ 1 at C=%-2d R=%.1f: %s\n", c, r, hOrNone(dr.MinimalDepth(c, r)))
			}
		}
		fmt.Println()
	}

	if run("cache") {
		any = true
		res, err := ace.CacheCombo(sc, 8, 1, 50, 200, 2000, 0.8)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("§5.2 ACE + index cache (paper: −75%% traffic, −70%% response):\n")
		fmt.Printf("  traffic:  blind %.0f → ACE %.0f → ACE+cache %.0f  (−%.1f%%)\n",
			res.BlindTraffic, res.ACETraffic, res.CachedTraffic, 100*res.TrafficReduction())
		fmt.Printf("  response: blind %.0f → ACE %.0f → ACE+cache %.0f  (−%.1f%%)\n",
			res.BlindResponse, res.ACEResponse, res.CachedResponse, 100*res.ResponseReduction())
		fmt.Printf("  cache hits per query: %.2f\n\n", res.CacheHitRate)
	}

	if run("policy") {
		any = true
		fig, tbl, err := ace.PolicyAblation(sc, 8, *steps, 1)
		if err != nil {
			fatal(err)
		}
		printFig(fig)
		fmt.Println(tbl.Render())
	}

	if run("baselines") {
		any = true
		res, err := ace.Baselines(sc, 8, *steps)
		if err != nil {
			fatal(err)
		}
		printFig(res.Figure())
		fmt.Println(res.Table().Render())
	}

	if run("walks") {
		any = true
		res, err := ace.Walks(sc, 8, *steps, 8, 256)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("k-walker random-walk search, before vs after ACE (§2's mismatch argument):\n")
		fmt.Printf("  traffic:  %.0f → %.0f (−%.1f%%)\n", res.BeforeTraffic, res.AfterTraffic,
			100*(1-res.AfterTraffic/res.BeforeTraffic))
		fmt.Printf("  response: %.1f → %.1f ms\n", res.BeforeResponse, res.AfterResponse)
		fmt.Printf("  success:  %.1f%% → %.1f%%\n", 100*res.BeforeSuccess, 100*res.AfterSuccess)
		fmt.Printf("  HPF partial flooding traffic: %.0f → %.0f (−%.1f%%)\n\n",
			res.HPFBeforeTraffic, res.HPFAfterTraffic,
			100*(1-res.HPFAfterTraffic/res.HPFBeforeTraffic))
	}

	if run("robust") {
		any = true
		res, err := ace.Robustness(sc, 8, *steps)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("substrate robustness (traffic reduction): BA %.1f%%, transit-stub %.1f%%\n\n",
			100*res.BAReduction, 100*res.TransitStubReduction)
	}

	if run("ablation") {
		any = true
		res, err := ace.Ablation(sc, 8, *steps)
		if err != nil {
			fatal(err)
		}
		fmt.Println(res.Table().Render())
	}

	if run("churnsweep") {
		any = true
		res, err := ace.ChurnSweep(sc, 8,
			[]time.Duration{5 * time.Minute, 10 * time.Minute, 20 * time.Minute},
			time.Duration(*minutes)*time.Minute)
		if err != nil {
			fatal(err)
		}
		printFig(res.Figure())
		for i, lt := range res.Lifetimes {
			fmt.Printf("lifetime %-5v: traffic −%.1f%%, scope ratio %.3f\n",
				lt, 100*res.Reduction[i], res.ScopeRatio[i])
		}
		fmt.Println()
	}

	if run("twotier") {
		any = true
		res, err := ace.TwoTier(sc, 8, *steps)
		if err != nil {
			fatal(err)
		}
		fmt.Println(res.Table().Render())
	}

	if run("faultsweep") {
		any = true
		res, err := ace.FaultSweep(sc, ace.DefaultFaultSpec(8))
		if err != nil {
			fatal(err)
		}
		printFig(res.Figure())
		tb := res.Table()
		fmt.Println(tb.Render())
	}

	if run("realworld") {
		any = true
		res, err := ace.RealWorld(sc, 8, *steps, 1)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("real-world snapshot consistency (paper: \"consistent results\"):\n")
		fmt.Printf("  generated overlay: traffic −%.1f%%, response −%.1f%%\n",
			100*res.GeneratedReduction, 100*res.GeneratedResponse)
		fmt.Printf("  Gnutella snapshot: traffic −%.1f%%, response −%.1f%%\n\n",
			100*res.SnapshotReduction, 100*res.SnapshotResponse)
	}

	if !any {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		os.Exit(2)
	}
	fmt.Printf("done in %s (scale %s)\n", time.Since(start).Round(time.Second), *scale)
}

func workedExamples(run func(string) bool) error {
	if run("fig3") {
		res, err := ace.Figure3()
		if err != nil {
			return err
		}
		fmt.Println("Figure 3 — Phase 2 on the worked 4-peer example:")
		fmt.Printf("  flooding neighbors of A: %s; non-flooding: %s\n",
			strings.Join(res.FloodingSet, ", "), strings.Join(res.NonFlooding, ", "))
		fmt.Printf("  blind flood from A: traffic %.0f over %d sends (scope %d)\n",
			res.BlindTraffic, len(res.BlindHops), res.ScopeBlind)
		fmt.Printf("  tree multicast:     traffic %.0f over %d sends (scope %d)\n\n",
			res.TreeTraffic, len(res.TreeHops), res.ScopeTree)
	}
	if run("table1") || run("table2") {
		w, err := ace.Walkthrough()
		if err != nil {
			return err
		}
		if run("table1") {
			fmt.Println(w.Table1.Render())
			fmt.Printf("(blind flooding on the same overlay: traffic %.0f, %d duplicates; 1-closure trees: %d duplicates)\n\n",
				w.Blind.TrafficCost, w.Blind.Duplicates, w.H1.Duplicates)
		}
		if run("table2") {
			fmt.Println(w.Table2.Render())
			fmt.Printf("(2-closure trees: traffic %.0f, %d duplicates)\n\n", w.H2.TrafficCost, w.H2.Duplicates)
		}
	}
	return nil
}

func hOrNone(h int) string {
	if h == 0 {
		return "none ≤ 8"
	}
	return fmt.Sprintf("%d", h)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "figures:", err)
	os.Exit(1)
}
