// Command topogen generates physical and logical topologies, reports the
// structural properties the paper relies on (power-law degrees,
// small-world path lengths and clustering), and optionally saves them in
// the trace text format.
//
// Usage:
//
//	topogen -n 10000 -model ba -out phys.topo
//	topogen -n 2000 -model waxman
//	topogen -overlay -n 2000 -c 8
package main

import (
	"flag"
	"fmt"
	"os"

	"ace/internal/overlay"
	"ace/internal/physical"
	"ace/internal/sim"
	"ace/internal/topology"
	"ace/internal/trace"
)

func main() {
	n := flag.Int("n", 2000, "node count")
	model := flag.String("model", "ba", "ba | waxman (physical models)")
	seed := flag.Int64("seed", 1, "deterministic seed")
	out := flag.String("out", "", "write the topology to this file")
	overlayMode := flag.Bool("overlay", false, "generate a logical overlay snapshot instead")
	c := flag.Int("c", 8, "overlay average degree (with -overlay)")
	locality := flag.Float64("locality", 1, "BA locality exponent (0 = pure BA)")
	flag.Parse()

	rng := sim.NewRNG(*seed)
	if *overlayMode {
		generateOverlay(rng, *n, *c, *out)
		return
	}

	var phys *topology.Physical
	var err error
	switch *model {
	case "ba":
		spec := topology.DefaultBASpec(*n)
		spec.LocalityExp = *locality
		phys, err = topology.GenerateBA(rng, spec)
	case "waxman":
		phys, err = topology.GenerateWaxman(rng, topology.WaxmanSpec{
			N: *n, Alpha: 0.2, Beta: 0.15, MinDelay: 1, DelayScale: 40,
		})
	default:
		fmt.Fprintf(os.Stderr, "topogen: unknown model %q\n", *model)
		os.Exit(2)
	}
	if err != nil {
		fatal(err)
	}

	p := topology.Measure(rng.Derive("measure"), phys.Graph, 64)
	fmt.Printf("model=%s nodes=%d edges=%d connected=%v\n", phys.Model, p.Nodes, p.Edges, p.Connected)
	fmt.Printf("degree: mean %.2f max %d, power-law α ≈ %.2f\n", p.MeanDegree, p.MaxDegree, p.PowerLawAlpha)
	fmt.Printf("small world: avg path %.2f hops, clustering %.3f\n", p.AvgPathLen, p.Clustering)

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := trace.WritePhysical(f, phys); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *out)
	}
}

func generateOverlay(rng *sim.RNG, n, c int, out string) {
	physN := 2 * n
	phys, err := topology.GenerateBA(rng.Derive("phys"), topology.DefaultBASpec(physN))
	if err != nil {
		fatal(err)
	}
	oracle := physical.NewOracle(phys.Graph, 0)
	attach, err := overlay.RandomAttachments(rng.Derive("attach"), physN, n)
	if err != nil {
		fatal(err)
	}
	net, err := overlay.NewNetwork(oracle, attach)
	if err != nil {
		fatal(err)
	}
	if err := overlay.GenerateSmallWorld(rng.Derive("overlay"), net, c, 0.6); err != nil {
		fatal(err)
	}
	fmt.Printf("overlay: %d peers, %d links, avg degree %.2f, clustering %.3f, connected=%v\n",
		net.NumAlive(), net.NumEdges(), net.AverageDegree(),
		net.ClusteringCoefficient(rng.Derive("cc"), 300), net.IsConnected())
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := trace.WriteOverlay(f, net); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", out)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "topogen:", err)
	os.Exit(1)
}
