// Command acesim builds one simulated P2P deployment and reports what
// ACE does to it: per-step traffic cost, response time, search scope and
// overlay statistics, for any policy and closure depth.
//
// Usage:
//
//	acesim -peers 2000 -phys 5000 -c 10 -h 1 -steps 12 -policy random
//
// Observability:
//
//	-v              per-round phase timings and query means on stderr-free stdout
//	-metrics f.jsonl  per-round and per-query records as JSON lines (obs.Stream);
//	                implies instrumentation so the final snapshot carries counters
//	-debug :6060    live endpoint: net/http/pprof under /debug/pprof/, a
//	                registry snapshot under /debug/obs, and a windowed causal
//	                trace under /debug/trace?rounds=N (enables instrumentation)
//	-trace out.json   record a causal trace of the whole run; .json / .json.gz-less
//	                extensions select Chrome trace-event format (load in Perfetto),
//	                anything else JSONL. Implies the flight recorder with dump
//	                prefix <out>.flight
//	-flight prefix  always-on flight recorder alone: small rings, no full trace
//	                file, auto-dumps <prefix>-round<N>-<trigger>.json on anomalies
//	-trace-analyze f  load a trace (Chrome or JSONL), print the critical-path
//	                report (per-round straggler shards, slowest queries hop by
//	                hop), and exit
//
// Fault injection (deterministic, seed-derived):
//
//	-faults plan.json  load a full fault plan (loss, jitter, timeouts, …);
//	                   a zero plan seed inherits -seed
//	-loss 0.05      shorthand: 5% message loss, probe timeout, connect failure
//	-crash 0.25     25% of churned-out peers crash (half-open edges) instead
//	                of leaving gracefully
//	-churnpeers 6   churn 6 peers (departure + replacement join) per step
package main

import (
	"flag"
	"fmt"
	"math"
	"net/http"
	"net/http/pprof"
	"os"
	"path/filepath"
	"strings"

	"ace"
	"ace/internal/fault"
	"ace/internal/metrics"
	"ace/internal/obs"
	"ace/internal/obs/tracer"
	"ace/internal/overlay"
	"ace/internal/sim"
)

func main() {
	seed := flag.Int64("seed", 1, "deterministic seed")
	phys := flag.Int("phys", 2000, "physical topology size")
	peers := flag.Int("peers", 500, "overlay population")
	c := flag.Int("c", 8, "average overlay degree")
	depth := flag.Int("h", 1, "closure depth")
	steps := flag.Int("steps", 12, "ACE rounds")
	queries := flag.Int("queries", 50, "queries sampled per step")
	policyName := flag.String("policy", "random", "random | naive | closest")
	shards := flag.Int("shards", 0, "sharded round engine: shard count (0 serial, -1 GOMAXPROCS)")
	verbose := flag.Bool("v", false, "print per-round phase timings and query means")
	metricsPath := flag.String("metrics", "", "write per-round/per-query JSONL records to this file")
	debugAddr := flag.String("debug", "", "serve pprof and the obs registry on this address (e.g. :6060)")
	tracePath := flag.String("trace", "", "record a causal trace to this file (.json selects Chrome trace-event format, else JSONL)")
	flightPrefix := flag.String("flight", "", "flight recorder only: auto-dump <prefix>-round<N>-<trigger>.json on anomalies")
	traceAnalyze := flag.String("trace-analyze", "", "analyze a recorded trace file and print the critical-path report, then exit")
	faultsPath := flag.String("faults", "", "load a fault plan (JSON) and inject it into the run")
	faultOnset := flag.Int("faultonset", 0, "attach the fault plan at this step instead of from the start (a mid-run fault spike exercises the flight recorder)")
	loss := flag.Float64("loss", 0, "shorthand fault plan: message loss = probe timeout = connect failure rate")
	crash := flag.Float64("crash", 0, "fraction of churned-out peers that crash instead of leaving [0,1]")
	churnPeers := flag.Int("churnpeers", 0, "churn this many peers (leave/crash + rejoin) before each step")
	flag.Parse()

	if *traceAnalyze != "" {
		f, err := os.Open(*traceAnalyze)
		if err != nil {
			fmt.Fprintln(os.Stderr, "acesim:", err)
			os.Exit(1)
		}
		capture, err := tracer.ReadAny(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "acesim:", err)
			os.Exit(1)
		}
		if err := tracer.WriteReport(os.Stdout, capture, 5); err != nil {
			fmt.Fprintln(os.Stderr, "acesim:", err)
			os.Exit(1)
		}
		return
	}

	// Causal tracing: -trace records the full run into DefaultCapacity
	// rings and dumps at exit; -flight alone runs the cheap always-on
	// rings whose window only hits disk when an anomaly trigger fires.
	tracing := *tracePath != "" || *flightPrefix != ""
	var flight *tracer.FlightRecorder
	traceID := ""
	if tracing {
		ringCap := tracer.DefaultCapacity
		if *tracePath == "" {
			ringCap = tracer.FlightCapacity
		}
		tracer.Enable(ringCap)
		traceID = tracer.FormatRunID(tracer.Default().RunID())
		prefix := *flightPrefix
		if prefix == "" {
			prefix = *tracePath + ".flight"
		}
		// The flag value may carry a directory (-flight /tmp/run1/fl);
		// the recorder joins Dir and Prefix itself.
		dir, base := filepath.Split(prefix)
		if dir == "" {
			dir = "."
		}
		flight = tracer.NewFlightRecorder(tracer.Default(), tracer.FlightConfig{Dir: dir, Prefix: base})
	}

	var policy ace.Policy
	switch *policyName {
	case "random":
		policy = ace.PolicyRandom
	case "naive":
		policy = ace.PolicyNaive
	case "closest":
		policy = ace.PolicyClosest
	default:
		fmt.Fprintf(os.Stderr, "acesim: unknown policy %q\n", *policyName)
		os.Exit(2)
	}

	// Assemble the fault plan: an explicit -faults file wins, the -loss
	// shorthand fills the three rate knobs uniformly, and -crash rides
	// along in either case so plan files can carry the full scenario.
	var plan fault.Plan
	if *faultsPath != "" {
		p, err := fault.LoadPlan(*faultsPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "acesim:", err)
			os.Exit(1)
		}
		plan = p
	} else if *loss > 0 {
		plan = fault.Plan{LossRate: *loss, ProbeTimeoutRate: *loss, ConnectFailRate: *loss}
	}
	if plan.Seed == 0 {
		plan.Seed = *seed
	}
	if *crash != 0 && plan.CrashFraction == 0 {
		plan.CrashFraction = *crash
	}
	crashFrac := plan.CrashFraction
	if crashFrac < 0 || crashFrac > 1 {
		fmt.Fprintln(os.Stderr, "acesim: -crash outside [0,1]")
		os.Exit(2)
	}

	var stream *obs.Stream
	if *metricsPath != "" {
		f, err := os.Create(*metricsPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "acesim:", err)
			os.Exit(1)
		}
		defer f.Close()
		stream = obs.NewStream(f)
		// The JSONL stream should surface the gated ace.* counters
		// (including the fault reactions) in its final snapshot.
		obs.Enable()
	}
	if *debugAddr != "" {
		// The live endpoint is only useful with the registry recording.
		obs.Enable()
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		mux.Handle("/debug/obs", obs.Handler(obs.Default()))
		mux.Handle("/debug/trace", tracer.Handler(tracer.Default()))
		go func() {
			if err := http.ListenAndServe(*debugAddr, mux); err != nil {
				fmt.Fprintln(os.Stderr, "acesim: debug server:", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "acesim: debug endpoint on %s (/debug/pprof/, /debug/obs, /debug/trace)\n", *debugAddr)
	}

	if *verbose {
		// -v closes with phase-latency quantiles, which need the span
		// histograms recording from the first round.
		obs.Enable()
	}

	sys, err := ace.NewSystem(
		ace.WithSeed(*seed),
		ace.WithSize(*phys, *peers),
		ace.WithAvgDegree(*c),
		ace.WithDepth(*depth),
		ace.WithPolicy(policy),
		ace.WithShards(*shards),
	)
	if err != nil {
		fmt.Fprintln(os.Stderr, "acesim:", err)
		os.Exit(1)
	}
	var inj *fault.Injector
	if plan.Active() {
		if inj, err = fault.NewInjector(plan); err != nil {
			fmt.Fprintln(os.Stderr, "acesim:", err)
			os.Exit(1)
		}
		if *faultOnset <= 1 {
			sys.Network().SetFaults(inj)
		}
	}

	// churnStep removes n random live peers — each crashing with the
	// plan's crash fraction, leaving gracefully otherwise — and rejoins a
	// random dead slot per departure, keeping the population constant.
	churnRNG := sim.NewRNG(*seed).Derive("acesim-churn")
	churnStep := func(n int) (left, crashed int) {
		net := sys.Network()
		for i := 0; i < n && net.NumAlive() > 2; i++ {
			alive := net.AlivePeers()
			p := alive[churnRNG.Intn(len(alive))]
			if crashFrac > 0 && churnRNG.Float64() < crashFrac {
				net.Crash(p)
				crashed++
			} else {
				net.Leave(p)
			}
			left++
		}
		for i := 0; i < left; i++ {
			var dead []overlay.PeerID
			for p := 0; p < net.N(); p++ {
				if !net.Alive(overlay.PeerID(p)) {
					dead = append(dead, overlay.PeerID(p))
				}
			}
			if len(dead) == 0 {
				break
			}
			net.Join(churnRNG, dead[churnRNG.Intn(len(dead))], *c)
		}
		return left, crashed
	}

	rng := sim.NewRNG(*seed).Derive("acesim-queries")
	sample := func(blind bool, label string, round int) (traffic, response, scope, success float64) {
		net := sys.Network()
		alive := net.AlivePeers()
		var t, r, s metrics.Agg
		answered := 0
		for i := 0; i < *queries; i++ {
			src := alive[rng.Intn(len(alive))]
			responders := map[overlay.PeerID]bool{alive[rng.Intn(len(alive))]: true}
			var q ace.QueryResult
			if blind {
				q = sys.QueryBlind(src, 0, responders)
			} else {
				q = sys.Query(src, 0, responders)
			}
			t.Add(q.TrafficCost)
			r.Add(q.FirstResponse)
			s.Add(float64(q.Scope))
			if !math.IsInf(q.FirstResponse, 1) {
				answered++
			}
			if stream != nil {
				rec := obs.QueryRecord{
					Label: label, Round: round, Index: i,
					Source: int(src), Scope: q.Scope, Traffic: q.TrafficCost,
					Transmissions: q.Transmissions, Duplicates: q.Duplicates,
					TraceGUID: q.TraceGUID,
				}
				rec.SetResponseMS(q.FirstResponse)
				stream.EmitQuery(rec)
			}
		}
		success = -1 // the flight recorder skips rounds that sampled nothing
		if *queries > 0 {
			success = float64(answered) / float64(*queries)
		}
		return t.Mean(), r.Mean(), s.Mean(), success
	}

	bt, br, bs, _ := sample(true, "blind", 0)
	fmt.Printf("blind flooding baseline: traffic %.0f  response %.1f ms  scope %.1f\n", bt, br, bs)
	fmt.Printf("%4s  %10s  %8s  %8s  %7s  %6s  %s\n", "step", "traffic", "Δtraffic", "response", "Δresp", "scope", "degree")
	for k := 1; k <= *steps; k++ {
		if inj != nil && *faultOnset > 1 && k == *faultOnset {
			sys.Network().SetFaults(inj)
			fmt.Fprintf(os.Stderr, "acesim: fault plan attached at step %d\n", k)
		}
		if *churnPeers > 0 {
			left, crashed := churnStep(*churnPeers)
			if *verbose {
				fmt.Printf("      churn: %d departures (%d crashes)\n", left, crashed)
			}
		}
		rep := sys.Optimize(1)
		t, r, s, succ := sample(false, fmt.Sprintf("step%d", k), k)
		if flight != nil {
			if path, trigger, fired := flight.Note(tracer.RoundStats{
				Round:           tracer.Default().RoundSeq(),
				WallNanos:       rep.RebuildNanos + rep.Phase3Nanos + rep.RepairNanos,
				SuccessRate:     succ,
				SerialFallbacks: rep.MergeSerialFallbacks,
				RepairFallbacks: rep.RepairFallbacks,
				ProbeTimeouts:   rep.ProbeTimeouts,
			}); fired {
				fmt.Fprintf(os.Stderr, "acesim: flight recorder dumped %s (trigger: %s)\n", path, trigger)
			}
		}
		fmt.Printf("%4d  %10.0f  %7.1f%%  %8.1f  %6.1f%%  %6.1f  %.2f   (repl %d, tentative %d, repairs %d)\n",
			k, t, 100*metrics.Reduction(bt, t), r, 100*metrics.Reduction(br, r), s,
			sys.Network().AverageDegree(), rep.Replacements, rep.KeptNew, rep.Repairs)
		if *verbose {
			fmt.Printf("      round %d: rebuild %.2fms  phase3 %.2fms  repair %.2fms  probes %d  exchange %.0f\n",
				k, float64(rep.RebuildNanos)/1e6, float64(rep.Phase3Nanos)/1e6,
				float64(rep.RepairNanos)/1e6, rep.Probes, rep.ExchangeCost)
			if rep.RepairHits > 0 || rep.RepairFallbacks > 0 {
				fmt.Printf("      mst-repair: hits %d  fallbacks %d  attach %d  swap %d\n",
					rep.RepairHits, rep.RepairFallbacks, rep.AttachOps, rep.SwapOps)
			}
			if rep.Shards > 0 {
				fmt.Printf("      shards %d: merge %.2fms (sort %.2fms, %d segments, %d serial)  imbalance build %.1f%% propose %.1f%%\n",
					rep.Shards, float64(rep.MergeNanos)/1e6, float64(rep.MergeSortNanos)/1e6,
					rep.MergeSegments, rep.MergeSerialFallbacks,
					100*rep.ShardImbalance, 100*rep.ProposeImbalance)
			}
			if inj != nil || rep.PurgedEdges > 0 {
				fmt.Printf("      faults: retries %d  timeouts %d  stale %d/%d  blacklist %d  dial-fail %d  purged %d\n",
					rep.ProbeRetries, rep.ProbeTimeouts, rep.StaleMarked, rep.StaleExpired,
					rep.BlacklistHits, rep.FailedConnects, rep.PurgedEdges)
			}
		}
		if stream != nil {
			stream.EmitRound(obs.RoundRecord{
				Round:        k,
				RebuildNanos: rep.RebuildNanos, Phase3Nanos: rep.Phase3Nanos, RepairNanos: rep.RepairNanos,
				Probes: rep.Probes, Replacements: rep.Replacements, KeptNew: rep.KeptNew,
				DeferredCuts: rep.DeferredCuts, Abandoned: rep.Abandoned, Repairs: rep.Repairs,
				RepairHits: rep.RepairHits, RepairFallbacks: rep.RepairFallbacks,
				AttachOps: rep.AttachOps, SwapOps: rep.SwapOps,
				ProbeTraffic: rep.ProbeTraffic, ExchangeCost: rep.ExchangeCost,
				AvgDegree:    sys.Network().AverageDegree(),
				QueryTraffic: t, QueryResponse: r, QueryScope: s,
				ProbeRetries: rep.ProbeRetries, ProbeTimeouts: rep.ProbeTimeouts,
				StaleMarked: rep.StaleMarked, StaleExpired: rep.StaleExpired,
				BlacklistHits: rep.BlacklistHits, FailedConnects: rep.FailedConnects,
				PurgedEdges: rep.PurgedEdges,
				TraceID:     traceID, TraceSeq: tracer.Default().RoundSeq(),
			})
		}
	}
	fmt.Printf("total optimization overhead: %.0f (traffic-cost units)\n", sys.Optimizer().TotalOverhead())
	if *verbose && obs.Enabled() {
		for _, s := range obs.Default().Snapshot() {
			if s.Kind != "span" || s.Count == 0 || !strings.HasPrefix(s.Name, "ace.core.round.") {
				continue
			}
			fmt.Printf("phase %-24s p50 %8.2fms  p95 %8.2fms  p99 %8.2fms  (n=%d)\n",
				strings.TrimPrefix(s.Name, "ace.core.round."),
				s.Quantile(0.50)/1e6, s.Quantile(0.95)/1e6, s.Quantile(0.99)/1e6, s.Count)
		}
	}
	if inj != nil {
		st := inj.Stats()
		fmt.Printf("injected faults: %d messages lost, %d probe timeouts, %d connect failures\n",
			st.MessagesLost, st.ProbeTimeouts, st.ConnectFailures)
	}
	if stream != nil {
		if obs.Enabled() {
			stream.EmitSnapshot(obs.Default().Snapshot())
		}
		if err := stream.Err(); err != nil {
			fmt.Fprintln(os.Stderr, "acesim: metrics stream:", err)
			os.Exit(1)
		}
	}
	if *tracePath != "" {
		if err := writeTrace(*tracePath); err != nil {
			fmt.Fprintln(os.Stderr, "acesim: trace:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "acesim: trace written to %s (run %s)\n", *tracePath, traceID)
	}
}

// writeTrace dumps the whole recorded trace: Chrome trace-event JSON
// for .json paths (Perfetto-loadable), JSONL otherwise.
func writeTrace(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	capture := tracer.Default().Capture()
	if strings.HasSuffix(path, ".json") {
		err = tracer.WriteChrome(f, capture)
	} else {
		err = tracer.WriteJSONL(f, capture)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}
