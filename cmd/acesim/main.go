// Command acesim builds one simulated P2P deployment and reports what
// ACE does to it: per-step traffic cost, response time, search scope and
// overlay statistics, for any policy and closure depth.
//
// Usage:
//
//	acesim -peers 2000 -phys 5000 -c 10 -h 1 -steps 12 -policy random
package main

import (
	"flag"
	"fmt"
	"os"

	"ace"
	"ace/internal/metrics"
	"ace/internal/overlay"
	"ace/internal/sim"
)

func main() {
	seed := flag.Int64("seed", 1, "deterministic seed")
	phys := flag.Int("phys", 2000, "physical topology size")
	peers := flag.Int("peers", 500, "overlay population")
	c := flag.Int("c", 8, "average overlay degree")
	depth := flag.Int("h", 1, "closure depth")
	steps := flag.Int("steps", 12, "ACE rounds")
	queries := flag.Int("queries", 50, "queries sampled per step")
	policyName := flag.String("policy", "random", "random | naive | closest")
	flag.Parse()

	var policy ace.Policy
	switch *policyName {
	case "random":
		policy = ace.PolicyRandom
	case "naive":
		policy = ace.PolicyNaive
	case "closest":
		policy = ace.PolicyClosest
	default:
		fmt.Fprintf(os.Stderr, "acesim: unknown policy %q\n", *policyName)
		os.Exit(2)
	}

	sys, err := ace.NewSystem(
		ace.WithSeed(*seed),
		ace.WithSize(*phys, *peers),
		ace.WithAvgDegree(*c),
		ace.WithDepth(*depth),
		ace.WithPolicy(policy),
	)
	if err != nil {
		fmt.Fprintln(os.Stderr, "acesim:", err)
		os.Exit(1)
	}

	rng := sim.NewRNG(*seed).Derive("acesim-queries")
	sample := func(blind bool) (traffic, response, scope float64) {
		net := sys.Network()
		alive := net.AlivePeers()
		var t, r, s metrics.Agg
		for i := 0; i < *queries; i++ {
			src := alive[rng.Intn(len(alive))]
			responders := map[overlay.PeerID]bool{alive[rng.Intn(len(alive))]: true}
			var q ace.QueryResult
			if blind {
				q = sys.QueryBlind(src, 0, responders)
			} else {
				q = sys.Query(src, 0, responders)
			}
			t.Add(q.TrafficCost)
			r.Add(q.FirstResponse)
			s.Add(float64(q.Scope))
		}
		return t.Mean(), r.Mean(), s.Mean()
	}

	bt, br, bs := sample(true)
	fmt.Printf("blind flooding baseline: traffic %.0f  response %.1f ms  scope %.1f\n", bt, br, bs)
	fmt.Printf("%4s  %10s  %8s  %8s  %7s  %6s  %s\n", "step", "traffic", "Δtraffic", "response", "Δresp", "scope", "degree")
	for k := 1; k <= *steps; k++ {
		rep := sys.Optimize(1)
		t, r, s := sample(false)
		fmt.Printf("%4d  %10.0f  %7.1f%%  %8.1f  %6.1f%%  %6.1f  %.2f   (repl %d, tentative %d, repairs %d)\n",
			k, t, 100*metrics.Reduction(bt, t), r, 100*metrics.Reduction(br, r), s,
			sys.Network().AverageDegree(), rep.Replacements, rep.KeptNew, rep.Repairs)
	}
	fmt.Printf("total optimization overhead: %.0f (traffic-cost units)\n", sys.Optimizer().TotalOverhead())
}
