// Command acesim builds one simulated P2P deployment and reports what
// ACE does to it: per-step traffic cost, response time, search scope and
// overlay statistics, for any policy and closure depth.
//
// Usage:
//
//	acesim -peers 2000 -phys 5000 -c 10 -h 1 -steps 12 -policy random
//
// Observability:
//
//	-v              per-round phase timings and query means on stderr-free stdout
//	-metrics f.jsonl  per-round and per-query records as JSON lines (obs.Stream);
//	                implies instrumentation so the final snapshot carries counters
//	-debug :6060    live endpoint: net/http/pprof under /debug/pprof/, a
//	                registry snapshot under /debug/obs, and a windowed causal
//	                trace under /debug/trace?rounds=N (enables instrumentation)
//	-trace out.json   record a causal trace of the whole run; .json / .json.gz-less
//	                extensions select Chrome trace-event format (load in Perfetto),
//	                anything else JSONL. Implies the flight recorder with dump
//	                prefix <out>.flight
//	-flight prefix  always-on flight recorder alone: small rings, no full trace
//	                file, auto-dumps <prefix>-round<N>-<trigger>.json on anomalies
//	-trace-analyze f  load a trace (Chrome or JSONL), print the critical-path
//	                report (per-round straggler shards, slowest queries hop by
//	                hop), and exit
//
// Fault injection (deterministic, seed-derived):
//
//	-faults plan.json  load a full fault plan (loss, jitter, timeouts, …);
//	                   a zero plan seed inherits -seed
//	-loss 0.05      shorthand: 5% message loss, probe timeout, connect failure
//	-crash 0.25     25% of churned-out peers crash (half-open edges) instead
//	                of leaving gracefully
//	-churnpeers 6   churn 6 peers (departure + replacement join) per step
//
// Service mode (crash-safe checkpoint/restore, internal/snap format):
//
//	-checkpoint DIR  save a checkpoint into DIR's dual slots after each
//	                -every steps (and on graceful shutdown); SIGKILL at
//	                any instruction leaves at least one valid slot
//	-every N        checkpoint cadence in steps (default 1)
//	-restore DIR    resume from the newest valid checkpoint in DIR; the
//	                run configuration is adopted from the checkpoint and
//	                conflicting explicit flags are rejected. Checkpoints
//	                keep landing in DIR unless -checkpoint overrides it.
//	-replay-to N    with -restore: run until step N (replaces -steps)
//	-pace D         sleep D between steps (kill-recover harness knob)
//
// SIGINT/SIGTERM shut down gracefully: final checkpoint, sinks flushed.
// Any sink write failure (-metrics, -trace, -flight dumps, -checkpoint)
// exits nonzero and removes the partial output file.
package main

import (
	"flag"
	"fmt"
	"math"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"ace"
	"ace/internal/fault"
	"ace/internal/metrics"
	"ace/internal/obs"
	"ace/internal/obs/tracer"
	"ace/internal/overlay"
	"ace/internal/sim"
	"ace/internal/snap"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

// run is the whole program behind flag parsing, returning the exit
// code instead of calling os.Exit so the kill-recover harness can
// drive reference runs in-process.
func run(args []string) int {
	fs := flag.NewFlagSet("acesim", flag.ContinueOnError)
	seed := fs.Int64("seed", 1, "deterministic seed")
	phys := fs.Int("phys", 2000, "physical topology size")
	peers := fs.Int("peers", 500, "overlay population")
	c := fs.Int("c", 8, "average overlay degree")
	depth := fs.Int("h", 1, "closure depth")
	steps := fs.Int("steps", 12, "ACE rounds")
	queries := fs.Int("queries", 50, "queries sampled per step")
	policyName := fs.String("policy", "random", "random | naive | closest")
	shards := fs.Int("shards", 0, "sharded round engine: shard count (0 serial, -1 GOMAXPROCS)")
	verbose := fs.Bool("v", false, "print per-round phase timings and query means")
	metricsPath := fs.String("metrics", "", "write per-round/per-query JSONL records to this file")
	debugAddr := fs.String("debug", "", "serve pprof and the obs registry on this address (e.g. :6060)")
	tracePath := fs.String("trace", "", "record a causal trace to this file (.json selects Chrome trace-event format, else JSONL)")
	flightPrefix := fs.String("flight", "", "flight recorder only: auto-dump <prefix>-round<N>-<trigger>.json on anomalies")
	traceAnalyze := fs.String("trace-analyze", "", "analyze a recorded trace file and print the critical-path report, then exit")
	faultsPath := fs.String("faults", "", "load a fault plan (JSON) and inject it into the run")
	faultOnset := fs.Int("faultonset", 0, "attach the fault plan at this step instead of from the start (a mid-run fault spike exercises the flight recorder)")
	loss := fs.Float64("loss", 0, "shorthand fault plan: message loss = probe timeout = connect failure rate")
	crash := fs.Float64("crash", 0, "fraction of churned-out peers that crash instead of leaving [0,1]")
	churnPeers := fs.Int("churnpeers", 0, "churn this many peers (leave/crash + rejoin) before each step")
	checkpointDir := fs.String("checkpoint", "", "checkpoint directory (dual-slot, crash-safe)")
	every := fs.Int("every", 1, "checkpoint after every N steps")
	restoreDir := fs.String("restore", "", "resume from the newest valid checkpoint in this directory")
	replayTo := fs.Int("replay-to", 0, "with -restore: run until this step (replaces -steps)")
	pace := fs.Duration("pace", 0, "sleep this long between steps")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	explicit := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { explicit[f.Name] = true })

	if *traceAnalyze != "" {
		f, err := os.Open(*traceAnalyze)
		if err != nil {
			fmt.Fprintln(os.Stderr, "acesim:", err)
			return 1
		}
		capture, err := tracer.ReadAny(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "acesim:", err)
			return 1
		}
		if err := tracer.WriteReport(os.Stdout, capture, 5); err != nil {
			fmt.Fprintln(os.Stderr, "acesim:", err)
			return 1
		}
		return 0
	}
	if *every < 1 {
		fmt.Fprintln(os.Stderr, "acesim: -every must be at least 1")
		return 2
	}
	if *replayTo != 0 && *restoreDir == "" {
		fmt.Fprintln(os.Stderr, "acesim: -replay-to requires -restore")
		return 2
	}

	// Service mode: load the checkpoint first — on restore its Meta IS
	// the run configuration, and explicitly-set flags that contradict it
	// are rejected rather than silently forking the trajectory.
	var resumed *snap.Snapshot
	if *restoreDir != "" {
		store, err := snap.OpenStore(*restoreDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "acesim:", err)
			return 1
		}
		s, warnings, err := store.Load()
		for _, w := range warnings {
			fmt.Fprintln(os.Stderr, "acesim: restore:", w)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "acesim:", err)
			return 1
		}
		resumed = s
		m := s.Meta
		for _, conflict := range []struct {
			flag string
			bad  bool
		}{
			{"seed", *seed != m.Seed},
			{"phys", int64(*phys) != m.PhysicalNodes},
			{"peers", int64(*peers) != m.Peers},
			{"c", int64(*c) != m.AvgDegree},
			{"h", int64(*depth) != m.Depth},
			{"shards", int64(*shards) != m.Shards},
			{"queries", int64(*queries) != m.Queries},
			{"churnpeers", int64(*churnPeers) != m.ChurnPeers},
			{"faultonset", int64(*faultOnset) != m.FaultOnset},
			{"policy", policyNumber(*policyName) != m.Policy},
			{"faults", true},
			{"loss", true},
			{"crash", true},
		} {
			if explicit[conflict.flag] && conflict.bad {
				fmt.Fprintf(os.Stderr, "acesim: -%s conflicts with the checkpointed run configuration\n", conflict.flag)
				return 2
			}
		}
		*seed, *phys, *peers = m.Seed, int(m.PhysicalNodes), int(m.Peers)
		*c, *depth, *shards = int(m.AvgDegree), int(m.Depth), int(m.Shards)
		*queries, *churnPeers = int(m.Queries), int(m.ChurnPeers)
		*faultOnset = int(m.FaultOnset)
		*policyName = policyString(m.Policy)
		if *checkpointDir == "" {
			*checkpointDir = *restoreDir
		}
	}
	startStep := 0
	if resumed != nil {
		startStep = int(resumed.Meta.Step)
	}
	total := *steps
	if *replayTo > 0 {
		total = *replayTo
	} else if resumed != nil && !explicit["steps"] {
		total = startStep + *steps
	}
	if resumed != nil && total <= startStep {
		fmt.Fprintf(os.Stderr, "acesim: nothing to replay (checkpoint at step %d, target %d)\n", startStep, total)
		return 2
	}

	// Causal tracing: -trace records the full run into DefaultCapacity
	// rings and dumps at exit; -flight alone runs the cheap always-on
	// rings whose window only hits disk when an anomaly trigger fires.
	tracing := *tracePath != "" || *flightPrefix != ""
	var flight *tracer.FlightRecorder
	traceID := ""
	if tracing {
		ringCap := tracer.DefaultCapacity
		if *tracePath == "" {
			ringCap = tracer.FlightCapacity
		}
		tracer.Enable(ringCap)
		traceID = tracer.FormatRunID(tracer.Default().RunID())
		prefix := *flightPrefix
		if prefix == "" {
			prefix = *tracePath + ".flight"
		}
		// The flag value may carry a directory (-flight /tmp/run1/fl);
		// the recorder joins Dir and Prefix itself.
		dir, base := filepath.Split(prefix)
		if dir == "" {
			dir = "."
		}
		flight = tracer.NewFlightRecorder(tracer.Default(), tracer.FlightConfig{Dir: dir, Prefix: base})
	}

	var policy ace.Policy
	switch *policyName {
	case "random":
		policy = ace.PolicyRandom
	case "naive":
		policy = ace.PolicyNaive
	case "closest":
		policy = ace.PolicyClosest
	default:
		fmt.Fprintf(os.Stderr, "acesim: unknown policy %q\n", *policyName)
		return 2
	}

	// Assemble the fault plan: the checkpoint's plan on restore, else an
	// explicit -faults file, else the -loss shorthand; -crash rides
	// along in either case so plan files can carry the full scenario.
	var plan fault.Plan
	switch {
	case resumed != nil:
		plan = resumed.Meta.Plan
	case *faultsPath != "":
		p, err := fault.LoadPlan(*faultsPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "acesim:", err)
			return 1
		}
		plan = p
	case *loss > 0:
		plan = fault.Plan{LossRate: *loss, ProbeTimeoutRate: *loss, ConnectFailRate: *loss}
	}
	if resumed == nil {
		if plan.Seed == 0 {
			plan.Seed = *seed
		}
		if *crash != 0 && plan.CrashFraction == 0 {
			plan.CrashFraction = *crash
		}
	}
	crashFrac := plan.CrashFraction
	if crashFrac < 0 || crashFrac > 1 {
		fmt.Fprintln(os.Stderr, "acesim: -crash outside [0,1]")
		return 2
	}

	var stream *obs.Stream
	var metricsFile *os.File
	if *metricsPath != "" {
		f, err := os.Create(*metricsPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "acesim:", err)
			return 1
		}
		defer f.Close()
		metricsFile = f
		stream = obs.NewStream(f)
		// The JSONL stream should surface the gated ace.* counters
		// (including the fault reactions) in its final snapshot.
		obs.Enable()
	}
	// failSink reports a sink write failure: the partial output is
	// removed so no consumer mistakes a torn file for a complete run.
	failSink := func(what, path string, err error) int {
		fmt.Fprintf(os.Stderr, "acesim: %s: %v\n", what, err)
		if path != "" {
			os.Remove(path)
		}
		return 1
	}
	if *debugAddr != "" {
		// The live endpoint is only useful with the registry recording.
		obs.Enable()
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		mux.Handle("/debug/obs", obs.Handler(obs.Default()))
		mux.Handle("/debug/trace", tracer.Handler(tracer.Default()))
		go func() {
			if err := http.ListenAndServe(*debugAddr, mux); err != nil {
				fmt.Fprintln(os.Stderr, "acesim: debug server:", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "acesim: debug endpoint on %s (/debug/pprof/, /debug/obs, /debug/trace)\n", *debugAddr)
	}

	if *verbose {
		// -v closes with phase-latency quantiles, which need the span
		// histograms recording from the first round.
		obs.Enable()
	}

	// Build fresh or restore: either way sys, the injector, the RNG
	// streams, and the blind baseline end up in the same state an
	// uninterrupted run would hold at startStep.
	var (
		sys            *ace.System
		inj            *fault.Injector
		faultsAttached bool
		faultBase      fault.Stats
		err            error
	)
	churnRNG := sim.NewRNG(*seed).Derive("acesim-churn")
	rng := sim.NewRNG(*seed).Derive("acesim-queries")
	if resumed != nil {
		sys, inj, err = ace.RestoreSystem(resumed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "acesim:", err)
			return 1
		}
		faultsAttached = resumed.Meta.FaultAttached
		faultBase = resumed.Meta.FaultBase
		for _, s := range []struct {
			name string
			rng  *sim.RNG
		}{{"acesim-churn", churnRNG}, {"acesim-queries", rng}} {
			pos, ok := resumed.Pos(s.name)
			if !ok {
				fmt.Fprintf(os.Stderr, "acesim: checkpoint lacks the %q rng stream\n", s.name)
				return 1
			}
			if err := s.rng.SkipTo(pos); err != nil {
				fmt.Fprintln(os.Stderr, "acesim:", err)
				return 1
			}
		}
		fmt.Fprintf(os.Stderr, "acesim: resumed at step %d, replaying to %d\n", startStep, total)
	} else {
		sys, err = ace.NewSystem(
			ace.WithSeed(*seed),
			ace.WithSize(*phys, *peers),
			ace.WithAvgDegree(*c),
			ace.WithDepth(*depth),
			ace.WithPolicy(policy),
			ace.WithShards(*shards),
		)
		if err != nil {
			fmt.Fprintln(os.Stderr, "acesim:", err)
			return 1
		}
		if plan.Active() {
			if inj, err = fault.NewInjector(plan); err != nil {
				fmt.Fprintln(os.Stderr, "acesim:", err)
				return 1
			}
			if *faultOnset <= 1 {
				sys.Network().SetFaults(inj)
				faultsAttached = true
			}
		}
	}

	var store *snap.Store
	if *checkpointDir != "" {
		if store, err = snap.OpenStore(*checkpointDir); err != nil {
			fmt.Fprintln(os.Stderr, "acesim:", err)
			return 1
		}
	}
	// saveCheckpoint captures the full engine state after step k. The
	// engine sits at a rebuild boundary here (Optimize ends every burst
	// with a RebuildTrees), which is the state RestoreState can rebuild
	// bit-identically. baseline is captured by reference: it is filled in
	// below, before the first step can run.
	var baseline snap.Baseline
	saveCheckpoint := func(k int) error {
		return store.Save(&snap.Snapshot{
			Meta: snap.Meta{
				Step: int64(k), Seed: *seed,
				PhysicalNodes: int64(*phys), Peers: int64(*peers), AvgDegree: int64(*c),
				Depth: int64(*depth), Shards: int64(*shards), Policy: int64(policy),
				Queries: int64(*queries), ChurnPeers: int64(*churnPeers),
				Plan: plan, FaultOnset: int64(*faultOnset), FaultAttached: faultsAttached,
				FaultBase: addStats(faultBase, inj.Stats()),
				Baseline:  baseline,
			},
			Net: sys.Network().SnapshotState(),
			Opt: sys.Optimizer().SnapshotState(),
			RNGs: []snap.RNGPos{
				{Name: "system", Pos: sys.RNG().Pos()},
				{Name: "acesim-churn", Pos: churnRNG.Pos()},
				{Name: "acesim-queries", Pos: rng.Pos()},
			},
		})
	}

	// churnStep removes n random live peers — each crashing with the
	// plan's crash fraction, leaving gracefully otherwise — and rejoins a
	// random dead slot per departure, keeping the population constant.
	churnStep := func(n int) (left, crashed int) {
		net := sys.Network()
		for i := 0; i < n && net.NumAlive() > 2; i++ {
			alive := net.AlivePeers()
			p := alive[churnRNG.Intn(len(alive))]
			if crashFrac > 0 && churnRNG.Float64() < crashFrac {
				net.Crash(p)
				crashed++
			} else {
				net.Leave(p)
			}
			left++
		}
		for i := 0; i < left; i++ {
			var dead []overlay.PeerID
			for p := 0; p < net.N(); p++ {
				if !net.Alive(overlay.PeerID(p)) {
					dead = append(dead, overlay.PeerID(p))
				}
			}
			if len(dead) == 0 {
				break
			}
			net.Join(churnRNG, dead[churnRNG.Intn(len(dead))], *c)
		}
		return left, crashed
	}

	sample := func(blind bool, label string, round int) (traffic, response, scope, success float64) {
		net := sys.Network()
		alive := net.AlivePeers()
		var t, r, s metrics.Agg
		answered := 0
		for i := 0; i < *queries; i++ {
			src := alive[rng.Intn(len(alive))]
			responders := map[overlay.PeerID]bool{alive[rng.Intn(len(alive))]: true}
			var q ace.QueryResult
			if blind {
				q = sys.QueryBlind(src, 0, responders)
			} else {
				q = sys.Query(src, 0, responders)
			}
			t.Add(q.TrafficCost)
			r.Add(q.FirstResponse)
			s.Add(float64(q.Scope))
			if !math.IsInf(q.FirstResponse, 1) {
				answered++
			}
			if stream != nil {
				rec := obs.QueryRecord{
					Label: label, Round: round, Index: i,
					Source: int(src), Scope: q.Scope, Traffic: q.TrafficCost,
					Transmissions: q.Transmissions, Duplicates: q.Duplicates,
					TraceGUID: q.TraceGUID,
				}
				rec.SetResponseMS(q.FirstResponse)
				stream.EmitQuery(rec)
			}
		}
		success = -1 // the flight recorder skips rounds that sampled nothing
		if *queries > 0 {
			success = float64(answered) / float64(*queries)
		}
		return t.Mean(), r.Mean(), s.Mean(), success
	}

	// The blind baseline is sampled once at step 0 and checkpointed;
	// resampling it on restore would re-draw from the query stream and
	// fork every later measurement.
	var bt, br, bs float64
	if resumed != nil {
		bl := resumed.Meta.Baseline
		bt, br, bs = bl.Traffic, bl.Response, bl.Scope
	} else {
		bt, br, bs, _ = sample(true, "blind", 0)
	}
	baseline = snap.Baseline{Traffic: bt, Response: br, Scope: bs}

	// SIGINT/SIGTERM break the step loop; the shutdown path below still
	// writes the final checkpoint and flushes every sink.
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigCh)

	fmt.Printf("blind flooding baseline: traffic %.0f  response %.1f ms  scope %.1f\n", bt, br, bs)
	fmt.Printf("%4s  %10s  %8s  %8s  %7s  %6s  %s\n", "step", "traffic", "Δtraffic", "response", "Δresp", "scope", "degree")
	lastSaved := -1
	lastStep := startStep
	interrupted := false
	for k := startStep + 1; k <= total && !interrupted; k++ {
		select {
		case sig := <-sigCh:
			fmt.Fprintf(os.Stderr, "acesim: %v: shutting down gracefully\n", sig)
			interrupted = true
			continue
		default:
		}
		if inj != nil && !faultsAttached && *faultOnset > 1 && k == *faultOnset {
			sys.Network().SetFaults(inj)
			faultsAttached = true
			fmt.Fprintf(os.Stderr, "acesim: fault plan attached at step %d\n", k)
		}
		if *churnPeers > 0 {
			left, crashed := churnStep(*churnPeers)
			if *verbose {
				fmt.Printf("      churn: %d departures (%d crashes)\n", left, crashed)
			}
		}
		rep := sys.Optimize(1)
		t, r, s, succ := sample(false, fmt.Sprintf("step%d", k), k)
		lastStep = k
		if flight != nil {
			if path, trigger, fired := flight.Note(tracer.RoundStats{
				Round:           tracer.Default().RoundSeq(),
				WallNanos:       rep.RebuildNanos + rep.Phase3Nanos + rep.RepairNanos,
				SuccessRate:     succ,
				SerialFallbacks: rep.MergeSerialFallbacks,
				RepairFallbacks: rep.RepairFallbacks,
				ProbeTimeouts:   rep.ProbeTimeouts,
			}); fired {
				fmt.Fprintf(os.Stderr, "acesim: flight recorder dumped %s (trigger: %s)\n", path, trigger)
			}
			if err := flight.Err(); err != nil {
				return failSink("flight recorder", "", err)
			}
		}
		fmt.Printf("%4d  %10.0f  %7.1f%%  %8.1f  %6.1f%%  %6.1f  %.2f   (repl %d, tentative %d, repairs %d)\n",
			k, t, 100*metrics.Reduction(bt, t), r, 100*metrics.Reduction(br, r), s,
			sys.Network().AverageDegree(), rep.Replacements, rep.KeptNew, rep.Repairs)
		if *verbose {
			fmt.Printf("      round %d: rebuild %.2fms  phase3 %.2fms  repair %.2fms  probes %d  exchange %.0f\n",
				k, float64(rep.RebuildNanos)/1e6, float64(rep.Phase3Nanos)/1e6,
				float64(rep.RepairNanos)/1e6, rep.Probes, rep.ExchangeCost)
			if rep.RepairHits > 0 || rep.RepairFallbacks > 0 {
				fmt.Printf("      mst-repair: hits %d  fallbacks %d  attach %d  swap %d\n",
					rep.RepairHits, rep.RepairFallbacks, rep.AttachOps, rep.SwapOps)
			}
			if rep.Shards > 0 {
				fmt.Printf("      shards %d: merge %.2fms (sort %.2fms, %d segments, %d serial)  imbalance build %.1f%% propose %.1f%%\n",
					rep.Shards, float64(rep.MergeNanos)/1e6, float64(rep.MergeSortNanos)/1e6,
					rep.MergeSegments, rep.MergeSerialFallbacks,
					100*rep.ShardImbalance, 100*rep.ProposeImbalance)
			}
			if inj != nil || rep.PurgedEdges > 0 {
				fmt.Printf("      faults: retries %d  timeouts %d  stale %d/%d  blacklist %d  dial-fail %d  purged %d\n",
					rep.ProbeRetries, rep.ProbeTimeouts, rep.StaleMarked, rep.StaleExpired,
					rep.BlacklistHits, rep.FailedConnects, rep.PurgedEdges)
			}
		}
		if stream != nil {
			stream.EmitRound(obs.RoundRecord{
				Round:        k,
				RebuildNanos: rep.RebuildNanos, Phase3Nanos: rep.Phase3Nanos, RepairNanos: rep.RepairNanos,
				Probes: rep.Probes, Replacements: rep.Replacements, KeptNew: rep.KeptNew,
				DeferredCuts: rep.DeferredCuts, Abandoned: rep.Abandoned, Repairs: rep.Repairs,
				RepairHits: rep.RepairHits, RepairFallbacks: rep.RepairFallbacks,
				AttachOps: rep.AttachOps, SwapOps: rep.SwapOps,
				ProbeTraffic: rep.ProbeTraffic, ExchangeCost: rep.ExchangeCost,
				AvgDegree:    sys.Network().AverageDegree(),
				QueryTraffic: t, QueryResponse: r, QueryScope: s,
				ProbeRetries: rep.ProbeRetries, ProbeTimeouts: rep.ProbeTimeouts,
				StaleMarked: rep.StaleMarked, StaleExpired: rep.StaleExpired,
				BlacklistHits: rep.BlacklistHits, FailedConnects: rep.FailedConnects,
				PurgedEdges: rep.PurgedEdges,
				TraceID:     traceID, TraceSeq: tracer.Default().RoundSeq(),
			})
			if err := stream.Err(); err != nil {
				metricsFile.Close()
				return failSink("metrics stream", *metricsPath, err)
			}
		}
		if store != nil && k%*every == 0 {
			sn := saveCheckpoint(k)
			if sn != nil {
				return failSink("checkpoint", "", sn)
			}
			lastSaved = k
		}
		if *pace > 0 {
			time.Sleep(*pace)
		}
	}
	// Final checkpoint: on graceful shutdown, and whenever the cadence
	// left the last completed step unsaved.
	if store != nil && lastStep > startStep && lastSaved != lastStep {
		if err := saveCheckpoint(lastStep); err != nil {
			return failSink("checkpoint", "", err)
		}
	}

	fmt.Printf("total optimization overhead: %.0f (traffic-cost units)\n", sys.Optimizer().TotalOverhead())
	if *verbose && obs.Enabled() {
		for _, s := range obs.Default().Snapshot() {
			if s.Kind != "span" || s.Count == 0 || !strings.HasPrefix(s.Name, "ace.core.round.") {
				continue
			}
			fmt.Printf("phase %-24s p50 %8.2fms  p95 %8.2fms  p99 %8.2fms  (n=%d)\n",
				strings.TrimPrefix(s.Name, "ace.core.round."),
				s.Quantile(0.50)/1e6, s.Quantile(0.95)/1e6, s.Quantile(0.99)/1e6, s.Count)
		}
	}
	if inj != nil {
		st := addStats(faultBase, inj.Stats())
		fmt.Printf("injected faults: %d messages lost, %d probe timeouts, %d connect failures\n",
			st.MessagesLost, st.ProbeTimeouts, st.ConnectFailures)
	}
	if stream != nil {
		if obs.Enabled() {
			stream.EmitSnapshot(obs.Default().Snapshot())
		}
		if err := stream.Err(); err != nil {
			metricsFile.Close()
			return failSink("metrics stream", *metricsPath, err)
		}
	}
	if *tracePath != "" {
		if err := writeTrace(*tracePath); err != nil {
			return failSink("trace", *tracePath, err)
		}
		fmt.Fprintf(os.Stderr, "acesim: trace written to %s (run %s)\n", *tracePath, traceID)
	}
	return 0
}

// addStats sums a checkpointed fault-count base with the live
// injector's own counts: the cumulative totals across restarts.
func addStats(base, cur fault.Stats) fault.Stats {
	return fault.Stats{
		MessagesLost:    base.MessagesLost + cur.MessagesLost,
		ProbeTimeouts:   base.ProbeTimeouts + cur.ProbeTimeouts,
		ConnectFailures: base.ConnectFailures + cur.ConnectFailures,
	}
}

func policyNumber(name string) int64 {
	switch name {
	case "naive":
		return int64(ace.PolicyNaive)
	case "closest":
		return int64(ace.PolicyClosest)
	default:
		return int64(ace.PolicyRandom)
	}
}

func policyString(n int64) string {
	switch ace.Policy(n) {
	case ace.PolicyNaive:
		return "naive"
	case ace.PolicyClosest:
		return "closest"
	default:
		return "random"
	}
}

// writeTrace dumps the whole recorded trace: Chrome trace-event JSON
// for .json paths (Perfetto-loadable), JSONL otherwise.
func writeTrace(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	capture := tracer.Default().Capture()
	if strings.HasSuffix(path, ".json") {
		err = tracer.WriteChrome(f, capture)
	} else {
		err = tracer.WriteJSONL(f, capture)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}
