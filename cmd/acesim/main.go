// Command acesim builds one simulated P2P deployment and reports what
// ACE does to it: per-step traffic cost, response time, search scope and
// overlay statistics, for any policy and closure depth.
//
// Usage:
//
//	acesim -peers 2000 -phys 5000 -c 10 -h 1 -steps 12 -policy random
//
// Observability:
//
//	-v              per-round phase timings and query means on stderr-free stdout
//	-metrics f.jsonl  per-round and per-query records as JSON lines (obs.Stream)
//	-debug :6060    live endpoint: net/http/pprof under /debug/pprof/ and a
//	                registry snapshot under /debug/obs (enables instrumentation)
package main

import (
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"

	"ace"
	"ace/internal/metrics"
	"ace/internal/obs"
	"ace/internal/overlay"
	"ace/internal/sim"
)

func main() {
	seed := flag.Int64("seed", 1, "deterministic seed")
	phys := flag.Int("phys", 2000, "physical topology size")
	peers := flag.Int("peers", 500, "overlay population")
	c := flag.Int("c", 8, "average overlay degree")
	depth := flag.Int("h", 1, "closure depth")
	steps := flag.Int("steps", 12, "ACE rounds")
	queries := flag.Int("queries", 50, "queries sampled per step")
	policyName := flag.String("policy", "random", "random | naive | closest")
	verbose := flag.Bool("v", false, "print per-round phase timings and query means")
	metricsPath := flag.String("metrics", "", "write per-round/per-query JSONL records to this file")
	debugAddr := flag.String("debug", "", "serve pprof and the obs registry on this address (e.g. :6060)")
	flag.Parse()

	var policy ace.Policy
	switch *policyName {
	case "random":
		policy = ace.PolicyRandom
	case "naive":
		policy = ace.PolicyNaive
	case "closest":
		policy = ace.PolicyClosest
	default:
		fmt.Fprintf(os.Stderr, "acesim: unknown policy %q\n", *policyName)
		os.Exit(2)
	}

	var stream *obs.Stream
	if *metricsPath != "" {
		f, err := os.Create(*metricsPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "acesim:", err)
			os.Exit(1)
		}
		defer f.Close()
		stream = obs.NewStream(f)
	}
	if *debugAddr != "" {
		// The live endpoint is only useful with the registry recording.
		obs.Enable()
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		mux.Handle("/debug/obs", obs.Handler(obs.Default()))
		go func() {
			if err := http.ListenAndServe(*debugAddr, mux); err != nil {
				fmt.Fprintln(os.Stderr, "acesim: debug server:", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "acesim: debug endpoint on %s (/debug/pprof/, /debug/obs)\n", *debugAddr)
	}

	sys, err := ace.NewSystem(
		ace.WithSeed(*seed),
		ace.WithSize(*phys, *peers),
		ace.WithAvgDegree(*c),
		ace.WithDepth(*depth),
		ace.WithPolicy(policy),
	)
	if err != nil {
		fmt.Fprintln(os.Stderr, "acesim:", err)
		os.Exit(1)
	}

	rng := sim.NewRNG(*seed).Derive("acesim-queries")
	sample := func(blind bool, label string, round int) (traffic, response, scope float64) {
		net := sys.Network()
		alive := net.AlivePeers()
		var t, r, s metrics.Agg
		for i := 0; i < *queries; i++ {
			src := alive[rng.Intn(len(alive))]
			responders := map[overlay.PeerID]bool{alive[rng.Intn(len(alive))]: true}
			var q ace.QueryResult
			if blind {
				q = sys.QueryBlind(src, 0, responders)
			} else {
				q = sys.Query(src, 0, responders)
			}
			t.Add(q.TrafficCost)
			r.Add(q.FirstResponse)
			s.Add(float64(q.Scope))
			if stream != nil {
				rec := obs.QueryRecord{
					Label: label, Round: round, Index: i,
					Source: int(src), Scope: q.Scope, Traffic: q.TrafficCost,
					Transmissions: q.Transmissions, Duplicates: q.Duplicates,
				}
				rec.SetResponseMS(q.FirstResponse)
				stream.EmitQuery(rec)
			}
		}
		return t.Mean(), r.Mean(), s.Mean()
	}

	bt, br, bs := sample(true, "blind", 0)
	fmt.Printf("blind flooding baseline: traffic %.0f  response %.1f ms  scope %.1f\n", bt, br, bs)
	fmt.Printf("%4s  %10s  %8s  %8s  %7s  %6s  %s\n", "step", "traffic", "Δtraffic", "response", "Δresp", "scope", "degree")
	for k := 1; k <= *steps; k++ {
		rep := sys.Optimize(1)
		t, r, s := sample(false, fmt.Sprintf("step%d", k), k)
		fmt.Printf("%4d  %10.0f  %7.1f%%  %8.1f  %6.1f%%  %6.1f  %.2f   (repl %d, tentative %d, repairs %d)\n",
			k, t, 100*metrics.Reduction(bt, t), r, 100*metrics.Reduction(br, r), s,
			sys.Network().AverageDegree(), rep.Replacements, rep.KeptNew, rep.Repairs)
		if *verbose {
			fmt.Printf("      round %d: rebuild %.2fms  phase3 %.2fms  repair %.2fms  probes %d  exchange %.0f\n",
				k, float64(rep.RebuildNanos)/1e6, float64(rep.Phase3Nanos)/1e6,
				float64(rep.RepairNanos)/1e6, rep.Probes, rep.ExchangeCost)
		}
		if stream != nil {
			stream.EmitRound(obs.RoundRecord{
				Round:        k,
				RebuildNanos: rep.RebuildNanos, Phase3Nanos: rep.Phase3Nanos, RepairNanos: rep.RepairNanos,
				Probes: rep.Probes, Replacements: rep.Replacements, KeptNew: rep.KeptNew,
				DeferredCuts: rep.DeferredCuts, Abandoned: rep.Abandoned, Repairs: rep.Repairs,
				ProbeTraffic: rep.ProbeTraffic, ExchangeCost: rep.ExchangeCost,
				AvgDegree:    sys.Network().AverageDegree(),
				QueryTraffic: t, QueryResponse: r, QueryScope: s,
			})
		}
	}
	fmt.Printf("total optimization overhead: %.0f (traffic-cost units)\n", sys.Optimizer().TotalOverhead())
	if stream != nil {
		if obs.Enabled() {
			stream.EmitSnapshot(obs.Default().Snapshot())
		}
		if err := stream.Err(); err != nil {
			fmt.Fprintln(os.Stderr, "acesim: metrics stream:", err)
			os.Exit(1)
		}
	}
}
