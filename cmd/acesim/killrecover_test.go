package main

import (
	"bytes"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"ace/internal/snap"
)

// TestMain doubles as the harness child: when ACESIM_CHILD carries a
// 0x1f-joined argument list, this process IS acesim — the kill-recover
// test re-execs the test binary so SIGKILL lands on a real acesim run
// with no test scaffolding between the signal and the checkpoint store.
func TestMain(m *testing.M) {
	if argStr := os.Getenv("ACESIM_CHILD"); argStr != "" {
		os.Exit(run(strings.Split(argStr, "\x1f")))
	}
	os.Exit(m.Run())
}

// workloadArgs is the shared run configuration: churn, crashes and an
// active fault plan, so the state being recovered is as history-laden
// as the engine gets.
func workloadArgs(extra ...string) []string {
	return append([]string{
		"-seed", "42", "-peers", "200", "-phys", "600", "-c", "6",
		"-churnpeers", "3", "-loss", "0.15", "-crash", "0.3",
		"-queries", "20", "-steps", "16",
	}, extra...)
}

// loadNewest loads the newest valid checkpoint in dir and returns its
// canonical encoding.
func loadNewest(t *testing.T, dir string) (*snap.Snapshot, []byte) {
	t.Helper()
	store, err := snap.OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	s, warnings, err := store.Load()
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range warnings {
		t.Logf("restore warning: %s", w)
	}
	data, err := snap.Encode(s)
	if err != nil {
		t.Fatal(err)
	}
	return s, data
}

// TestKillRecover is the crash-safety harness: a child acesim process
// is SIGKILLed mid-run between checkpoints, a second run restores from
// whatever the dead process left on disk and replays to the target
// step, and the final checkpoint must be byte-for-byte identical to an
// uninterrupted run's. A third recovery does the same after the newest
// slot is truncated, proving the fallback slot also recovers exactly.
func TestKillRecover(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns a paced child process")
	}
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	refDir := filepath.Join(t.TempDir(), "ref")
	childDir := filepath.Join(t.TempDir(), "child")

	// Uninterrupted reference run, in-process.
	if code := run(workloadArgs("-checkpoint", refDir)); code != 0 {
		t.Fatalf("reference run exited %d", code)
	}
	refSnap, refBytes := loadNewest(t, refDir)
	if refSnap.Meta.Step != 16 {
		t.Fatalf("reference checkpoint at step %d, want 16", refSnap.Meta.Step)
	}

	// Child run, paced so the kill lands mid-run; SIGKILL is delivered
	// once the store holds a checkpoint a few steps in. Polling Load
	// against the live store is itself part of the test: slots under
	// construction are temp files until the atomic rename, so a reader
	// only ever sees complete checkpoints.
	child := exec.Command(exe)
	child.Env = append(os.Environ(),
		"ACESIM_CHILD="+strings.Join(workloadArgs("-checkpoint", childDir, "-pace", "50ms"), "\x1f"))
	child.Stdout, child.Stderr = nil, os.Stderr
	if err := child.Start(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		if time.Now().After(deadline) {
			child.Process.Kill()
			child.Wait()
			t.Fatal("child never reached step 4")
		}
		if store, err := snap.OpenStore(childDir); err == nil {
			if s, _, err := store.Load(); err == nil && s.Meta.Step >= 4 {
				break
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	child.Process.Kill()
	child.Wait()
	killed, _ := loadNewest(t, childDir)
	if killed.Meta.Step >= 16 {
		t.Fatalf("child finished (step %d) before the kill; raise -pace", killed.Meta.Step)
	}
	t.Logf("child killed at checkpoint step %d", killed.Meta.Step)

	// Keep a pristine copy of the dead process's store for the
	// corruption variant before recovery advances it.
	damagedDir := filepath.Join(t.TempDir(), "damaged")
	copyStore(t, childDir, damagedDir)

	// Recover and replay to the reference target.
	if code := run([]string{"-restore", childDir, "-replay-to", "16"}); code != 0 {
		t.Fatalf("recovery run exited %d", code)
	}
	gotSnap, gotBytes := loadNewest(t, childDir)
	if gotSnap.Meta.Step != 16 {
		t.Fatalf("recovered checkpoint at step %d, want 16", gotSnap.Meta.Step)
	}
	if !bytes.Equal(refBytes, gotBytes) {
		t.Fatalf("recovered final state differs from uninterrupted run (%d vs %d bytes)", len(gotBytes), len(refBytes))
	}

	// Torn-write variant: truncate the newest slot (as a crash mid-write
	// would, had the store not used temp+rename) and recover again — the
	// checksum rejects it, the older slot restores, and the replay still
	// converges to the identical final state.
	truncateNewestSlot(t, damagedDir)
	if code := run([]string{"-restore", damagedDir, "-replay-to", "16"}); code != 0 {
		t.Fatalf("fallback recovery run exited %d", code)
	}
	fbSnap, fbBytes := loadNewest(t, damagedDir)
	if fbSnap.Meta.Step != 16 {
		t.Fatalf("fallback recovery at step %d, want 16", fbSnap.Meta.Step)
	}
	if !bytes.Equal(refBytes, fbBytes) {
		t.Fatal("fallback recovery final state differs from uninterrupted run")
	}
}

// TestRestoreRejectsConflictingFlags pins the service-mode contract
// that a restore adopts the checkpointed configuration and refuses
// explicit flags that contradict it.
func TestRestoreRejectsConflictingFlags(t *testing.T) {
	dir := t.TempDir()
	if code := run([]string{"-seed", "3", "-peers", "120", "-phys", "400", "-steps", "2", "-checkpoint", dir}); code != 0 {
		t.Fatalf("seed run exited %d", code)
	}
	for _, args := range [][]string{
		{"-restore", dir, "-peers", "121"},
		{"-restore", dir, "-seed", "4"},
		{"-restore", dir, "-loss", "0.5"},
		{"-replay-to", "5"}, // -replay-to without -restore
	} {
		if code := run(args); code != 2 {
			t.Errorf("run(%v) exited %d, want 2", args, code)
		}
	}
	// Matching explicit flags are fine.
	if code := run([]string{"-restore", dir, "-peers", "120", "-replay-to", "4"}); code != 0 {
		t.Errorf("restore with matching flags failed")
	}
}

func copyStore(t *testing.T, src, dst string) {
	t.Helper()
	if err := os.MkdirAll(dst, 0o755); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o600); err != nil {
			t.Fatal(err)
		}
	}
}

// truncateNewestSlot finds the slot file holding the highest step and
// cuts it off mid-body.
func truncateNewestSlot(t *testing.T, dir string) {
	t.Helper()
	newest, step := "", int64(-1)
	for i := 0; i < 2; i++ {
		path := filepath.Join(dir, fmt.Sprintf("snap-%d.ace", i))
		data, err := os.ReadFile(path)
		if err != nil {
			continue
		}
		if s, err := snap.Decode(data); err == nil && s.Meta.Step > step {
			newest, step = path, s.Meta.Step
		}
	}
	if newest == "" {
		t.Fatal("no decodable slot to damage")
	}
	info, err := os.Stat(newest)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(newest, info.Size()/2); err != nil {
		t.Fatal(err)
	}
	t.Logf("truncated %s (step %d)", newest, step)
}
