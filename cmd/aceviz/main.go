// Command aceviz visualizes the mismatch problem disappearing: it draws
// the overlay's links as a histogram of physical delays and a plane map
// of one peer's neighborhood, before and after ACE optimization.
//
//	go run ./cmd/aceviz -peers 300 -c 8 -steps 10
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"strings"

	"ace"
	"ace/internal/overlay"
)

func main() {
	seed := flag.Int64("seed", 1, "deterministic seed")
	phys := flag.Int("phys", 1200, "physical topology size")
	peers := flag.Int("peers", 300, "overlay population")
	c := flag.Int("c", 8, "average overlay degree")
	steps := flag.Int("steps", 10, "ACE rounds")
	focus := flag.Int("focus", 0, "peer whose neighborhood to map")
	flag.Parse()

	sys, err := ace.NewSystem(
		ace.WithSeed(*seed), ace.WithSize(*phys, *peers), ace.WithAvgDegree(*c),
	)
	if err != nil {
		fmt.Fprintln(os.Stderr, "aceviz:", err)
		os.Exit(1)
	}

	fmt.Println("=== BEFORE ACE: link delays of the random (mismatched) overlay ===")
	printHistogram(sys.Network())
	printNeighborhood(sys, overlay.PeerID(*focus))

	sys.Optimize(*steps)

	fmt.Printf("\n=== AFTER %d ACE ROUNDS: links have collapsed toward physical neighbors ===\n", *steps)
	printHistogram(sys.Network())
	printNeighborhood(sys, overlay.PeerID(*focus))
}

// printHistogram buckets every live link by physical delay.
func printHistogram(net *ace.Network) {
	edges := net.SnapshotEdges()
	if len(edges) == 0 {
		fmt.Println("(no links)")
		return
	}
	maxCost := 0.0
	for _, e := range edges {
		if e.Cost > maxCost {
			maxCost = e.Cost
		}
	}
	const buckets = 12
	counts := make([]int, buckets)
	for _, e := range edges {
		b := int(e.Cost / (maxCost + 1e-9) * buckets)
		if b >= buckets {
			b = buckets - 1
		}
		counts[b]++
	}
	peak := 0
	total := 0.0
	for _, n := range counts {
		if n > peak {
			peak = n
		}
	}
	for _, e := range edges {
		total += e.Cost
	}
	fmt.Printf("%d links, mean delay %.1f ms\n", len(edges), total/float64(len(edges)))
	for b, n := range counts {
		lo := float64(b) / buckets * maxCost
		hi := float64(b+1) / buckets * maxCost
		bar := strings.Repeat("█", int(math.Round(float64(n)/float64(max(peak, 1))*40)))
		fmt.Printf("%6.0f–%-6.0f %5d %s\n", lo, hi, n, bar)
	}
}

// printNeighborhood draws the focus peer (X) and its neighbors (o) on the
// physical plane, using the peers' attachment positions.
func printNeighborhood(sys *ace.System, focus overlay.PeerID) {
	net := sys.Network()
	if int(focus) >= net.N() || !net.Alive(focus) {
		return
	}
	env := sys.Env()
	pos := env.Phys.Pos
	const w, h = 56, 18
	grid := make([][]rune, h)
	for i := range grid {
		grid[i] = []rune(strings.Repeat("·", w))
	}
	plot := func(p overlay.PeerID, mark rune) {
		pt := pos[net.Attachment(p)]
		x := int(pt.X * (w - 1))
		y := int(pt.Y * (h - 1))
		grid[y][x] = mark
	}
	for _, p := range net.AlivePeers() {
		plot(p, '.')
	}
	for _, q := range net.Neighbors(focus) {
		plot(q, 'o')
	}
	plot(focus, 'X')
	fmt.Printf("neighborhood of peer %d on the physical plane (X = peer, o = its neighbors):\n", focus)
	for _, row := range grid {
		fmt.Println(string(row))
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
