package ace_test

import (
	"fmt"
	"log"

	"ace"
)

// The quickstart: build a deployment, compare a blind-flooding query with
// the same query over ACE trees after ten optimization rounds.
func ExampleNewSystem() {
	sys, err := ace.NewSystem(
		ace.WithSeed(7),
		ace.WithSize(1500, 400),
		ace.WithAvgDegree(8),
	)
	if err != nil {
		log.Fatal(err)
	}
	before := sys.QueryBlind(0, 0, nil)
	sys.Optimize(10)
	after := sys.Query(0, 0, nil)

	fmt.Printf("scope retained: %v\n", after.Scope == before.Scope)
	fmt.Printf("traffic reduced: %v\n", after.TrafficCost < before.TrafficCost/2)
	// Output:
	// scope retained: true
	// traffic reduced: true
}

// Walkthrough regenerates the paper's Table 1/2 worked example.
func ExampleWalkthrough() {
	w, err := ace.Walkthrough()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("blind duplicates: %d\n", w.Blind.Duplicates)
	fmt.Printf("1-closure duplicates: %d\n", w.H1.Duplicates)
	fmt.Printf("2-closure duplicates: %d\n", w.H2.Duplicates)
	// Output:
	// blind duplicates: 4
	// 1-closure duplicates: 3
	// 2-closure duplicates: 0
}
